package netmodel

// Country weight tables. The paper geo-locates ~232M client IPs and
// ~1.5M server IPs to 242 and 200 countries respectively (Table 1), with
// the top-10 rankings of Table 2. The tables below encode plausible
// weights that reproduce those rankings: client IPs are dominated by the
// large eyeball countries (US, DE, CN, RU, ...), server IPs by hosting
// countries (DE, US, RU, FR, ...), and the traffic rankings shift toward
// Europe because the vantage point is a European IXP.

type countryWeight struct {
	code   string
	weight float64
}

// clientCountryWeights drives eyeball (client-side) AS placement.
// Ordered to reproduce Table 2's "All IPs" ranking.
var clientCountryWeights = []countryWeight{
	{"US", 15.0}, {"DE", 13.0}, {"CN", 10.0}, {"RU", 8.5}, {"IT", 6.0},
	{"FR", 5.6}, {"GB", 5.2}, {"TR", 4.2}, {"UA", 3.6}, {"JP", 3.2},
	{"NL", 2.4}, {"PL", 2.2}, {"ES", 2.0}, {"BR", 1.9}, {"CZ", 1.7},
	{"SE", 1.4}, {"AT", 1.3}, {"CH", 1.2}, {"RO", 1.1}, {"IN", 1.0},
	{"CA", 0.9}, {"AU", 0.8}, {"KR", 0.8}, {"MX", 0.7}, {"AR", 0.6},
	{"BE", 0.6}, {"DK", 0.5}, {"NO", 0.5}, {"FI", 0.5}, {"PT", 0.5},
	{"GR", 0.4}, {"HU", 0.4}, {"IL", 0.4}, {"ZA", 0.4}, {"EG", 0.3},
	{"ID", 0.3}, {"TH", 0.3}, {"VN", 0.3}, {"MY", 0.2}, {"SG", 0.2},
}

// serverCountryWeights drives hosting-side AS placement. Ordered to
// reproduce Table 2's "Server IPs" ranking (DE first, then US, RU, FR,
// GB, CN, NL, CZ, IT, UA).
var serverCountryWeights = []countryWeight{
	{"DE", 22.0}, {"US", 16.0}, {"RU", 8.0}, {"FR", 7.0}, {"GB", 6.0},
	{"CN", 5.2}, {"NL", 5.0}, {"CZ", 4.2}, {"IT", 3.6}, {"UA", 3.2},
	{"EU", 2.6}, {"RO", 2.2}, {"PL", 1.8}, {"SE", 1.4}, {"AT", 1.2},
	{"CH", 1.1}, {"ES", 1.0}, {"CA", 0.9}, {"JP", 0.8}, {"SG", 0.7},
	{"IE", 0.7}, {"DK", 0.6}, {"FI", 0.5}, {"NO", 0.5}, {"TR", 0.5},
	{"BR", 0.4}, {"IN", 0.4}, {"AU", 0.4}, {"KR", 0.3}, {"HU", 0.3},
}

// longTailCountries pads the country universe so the world contains the
// paper's ~242 observed countries. Each long-tail country receives a
// tiny weight.
var longTailCountries = buildLongTail()

func buildLongTail() []string {
	// Two-letter codes not already present in the weighted tables. The
	// exact codes are immaterial; only their number matters (the world
	// must span ~240+ "countries").
	var out []string
	present := map[string]bool{}
	for _, cw := range clientCountryWeights {
		present[cw.code] = true
	}
	for _, cw := range serverCountryWeights {
		present[cw.code] = true
	}
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	for i := 0; i < len(letters) && len(out) < 210; i++ {
		for j := 0; j < len(letters) && len(out) < 210; j++ {
			code := string(letters[i]) + string(letters[j])
			if !present[code] {
				present[code] = true
				out = append(out, code)
			}
		}
	}
	return out
}

// clientCountryTable returns codes and weights covering head + tail.
func clientCountryTable() ([]string, []float64) {
	return countryTable(clientCountryWeights, 0.02)
}

// serverCountryTable returns codes and weights covering head + tail.
func serverCountryTable() ([]string, []float64) {
	return countryTable(serverCountryWeights, 0.012)
}

func countryTable(head []countryWeight, tailWeight float64) ([]string, []float64) {
	codes := make([]string, 0, len(head)+len(longTailCountries))
	weights := make([]float64, 0, cap(codes))
	for _, cw := range head {
		codes = append(codes, cw.code)
		weights = append(weights, cw.weight)
	}
	for _, c := range longTailCountries {
		codes = append(codes, c)
		weights = append(weights, tailWeight)
	}
	return codes, weights
}

// euCountries is the set treated as "near the IXP" for locality boosts
// (the IXP is in DE; European traffic is over-represented).
var euCountries = map[string]bool{
	"DE": true, "FR": true, "GB": true, "NL": true, "IT": true, "ES": true,
	"PL": true, "CZ": true, "AT": true, "CH": true, "SE": true, "DK": true,
	"NO": true, "FI": true, "BE": true, "PT": true, "GR": true, "HU": true,
	"RO": true, "IE": true, "EU": true, "UA": true, "TR": true, "RU": true,
}

// localityBoost scales a client's traffic weight by proximity to the
// IXP: local (DE) clients route much of their traffic across the IXP,
// European clients a lot, the rest of the world less. This is what makes
// the traffic rankings in Table 2 euro-centric while the IP counts stay
// global.
func localityBoost(country string) float64 {
	switch {
	case country == "DE":
		return 5.0
	case euCountries[country]:
		return 2.2
	default:
		return 0.6
	}
}
