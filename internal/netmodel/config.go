// Package netmodel generates the synthetic Internet the reproduction
// measures: autonomous systems with roles and countries, prefix
// allocations, IXP membership (with the paper's observed growth), the
// organizations that operate server infrastructure, and the servers
// themselves — including the heterogeneous third-party deployments that
// Section 5 of the paper is about.
//
// Everything the measurement pipeline later "discovers" exists here as
// explicit ground truth, so every experiment can be validated
// quantitatively. The generator is fully deterministic in Config.Seed.
package netmodel

import "fmt"

// Config sizes the synthetic world. Counts are absolute; use PaperScale
// to derive a consistently scaled-down configuration from the paper's
// reported magnitudes.
type Config struct {
	// Seed drives all generator randomness.
	Seed int64

	// FirstWeek is the ISO week number of the first snapshot (35 in the
	// paper); Weeks is the number of consecutive weekly snapshots (17).
	FirstWeek int
	Weeks     int

	// NumASes is the number of actively routed ASes (42.8K in the
	// paper's week 45).
	NumASes int
	// NumPrefixes is the number of actively routed prefixes (445K).
	NumPrefixes int
	// NumOrgs is the number of organizations operating servers (~21K
	// clusters found in week 45).
	NumOrgs int
	// NumServers is the total pool of Web server IPs that exist in the
	// world across all weeks. The paper sees ~1.5M per week at the IXP;
	// the world pool is larger since not all servers are visible.
	NumServers int

	// MembersStart is the IXP member count in the first week (443);
	// MembersEnd is the count in the final week (457).
	MembersStart int
	MembersEnd   int

	// HTTPSFraction is the fraction of servers that also serve HTTPS
	// with a valid certificate (~250K of 1.5M).
	HTTPSFraction float64

	// StableFraction, RecurrentFraction split the server pool into the
	// paper's activity patterns: stable servers are active every week,
	// recurrent ones intermittently, the rest appear fresh in a later
	// week. (Fig. 4a: ~30% stable, ~60% recurrent, ~10% new in week 51.)
	StableFraction    float64
	RecurrentFraction float64

	// RecurrentOnProb is the per-week activity probability of a
	// recurrent server.
	RecurrentOnProb float64

	// GeoErrorRate is the fraction of prefixes whose geolocation DB
	// entry deliberately carries the wrong country, modelling geo-DB
	// unreliability. Zero by default for clean comparisons.
	GeoErrorRate float64

	// AvgDailyTrafficPBStart/End anchor the traffic volume trend
	// (11.9 PB/day in week 35 → 14.5 PB/day in week 51).
	AvgDailyTrafficPBStart float64
	AvgDailyTrafficPBEnd   float64
}

// PaperScale returns a configuration whose entity counts are the paper's
// week-45 magnitudes multiplied by f (floored to workable minimums).
// PaperScale(1) is the full published scale; tests typically run at
// f ≈ 0.002 and the report harness at f ≈ 0.02–0.1.
func PaperScale(f float64) Config {
	scale := func(n int, min int) int {
		v := int(float64(n) * f)
		if v < min {
			v = min
		}
		return v
	}
	return Config{
		Seed:                   1,
		FirstWeek:              35,
		Weeks:                  17,
		NumASes:                scale(42_800, 400),
		NumPrefixes:            scale(445_000, 1200),
		NumOrgs:                scale(21_000, 220),
		NumServers:             scale(2_400_000, 2600),
		MembersStart:           scale(443, 60),
		MembersEnd:             scale(457, 62),
		HTTPSFraction:          0.167,
		StableFraction:         0.095,
		RecurrentFraction:      0.145,
		RecurrentOnProb:        0.48,
		GeoErrorRate:           0,
		AvgDailyTrafficPBStart: 11.9,
		AvgDailyTrafficPBEnd:   14.5,
	}
}

// Tiny returns the small deterministic configuration used by unit tests.
func Tiny() Config {
	c := PaperScale(0.002)
	c.Seed = 7
	return c
}

// Validate reports the first configuration inconsistency, if any.
func (c *Config) Validate() error {
	switch {
	case c.Weeks < 1:
		return fmt.Errorf("netmodel: Weeks = %d, need >= 1", c.Weeks)
	case c.NumASes < 20:
		return fmt.Errorf("netmodel: NumASes = %d, need >= 20", c.NumASes)
	case c.NumPrefixes < c.NumASes:
		return fmt.Errorf("netmodel: NumPrefixes = %d < NumASes = %d", c.NumPrefixes, c.NumASes)
	case c.NumOrgs < 10:
		return fmt.Errorf("netmodel: NumOrgs = %d, need >= 10", c.NumOrgs)
	case c.NumServers < c.NumOrgs:
		return fmt.Errorf("netmodel: NumServers = %d < NumOrgs = %d", c.NumServers, c.NumOrgs)
	case c.MembersStart < 10 || c.MembersEnd < c.MembersStart:
		return fmt.Errorf("netmodel: member counts %d..%d invalid", c.MembersStart, c.MembersEnd)
	case c.MembersEnd >= c.NumASes:
		return fmt.Errorf("netmodel: MembersEnd = %d must be < NumASes = %d", c.MembersEnd, c.NumASes)
	case c.StableFraction < 0 || c.RecurrentFraction < 0 || c.StableFraction+c.RecurrentFraction > 1:
		return fmt.Errorf("netmodel: activity fractions %v/%v invalid", c.StableFraction, c.RecurrentFraction)
	case c.HTTPSFraction < 0 || c.HTTPSFraction > 1:
		return fmt.Errorf("netmodel: HTTPSFraction = %v out of range", c.HTTPSFraction)
	}
	return nil
}

// LastWeek returns the ISO week number of the final snapshot.
func (c *Config) LastWeek() int { return c.FirstWeek + c.Weeks - 1 }

// WeekIndex converts an ISO week number to a 0-based snapshot index.
func (c *Config) WeekIndex(isoWeek int) int { return isoWeek - c.FirstWeek }
