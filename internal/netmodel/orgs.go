package netmodel

import (
	"fmt"
	"math/rand"

	"ixplens/internal/randutil"
)

// OrgKind classifies an organization by business model, which in turn
// drives how its servers are deployed and named.
type OrgKind uint8

// Organization kinds.
const (
	OrgCDNDeploy   OrgKind = iota // CDN deploying servers inside ISPs (Akamai model)
	OrgCDNCentral                 // CDN operating its own data centers (CloudFlare model)
	OrgSearch                     // search/content giant with eyeball caches (Google model)
	OrgHoster                     // web hosting company
	OrgContent                    // content provider / web site operator
	OrgCloud                      // cloud infrastructure provider
	OrgStreamer                   // streaming service (RTMP + HTTP)
	OrgOneClick                   // one-click hoster
	OrgDNSProvider                // third-party DNS operator (SOA outsourcing target)
	OrgSmall                      // small organizations, universities, ...
)

// String returns a short kind name.
func (k OrgKind) String() string {
	switch k {
	case OrgCDNDeploy:
		return "cdn-deploy"
	case OrgCDNCentral:
		return "cdn-central"
	case OrgSearch:
		return "search"
	case OrgHoster:
		return "hoster"
	case OrgContent:
		return "content"
	case OrgCloud:
		return "cloud"
	case OrgStreamer:
		return "streamer"
	case OrgOneClick:
		return "one-click"
	case OrgDNSProvider:
		return "dns-provider"
	case OrgSmall:
		return "small"
	default:
		return fmt.Sprintf("OrgKind(%d)", uint8(k))
	}
}

// Org is an organization that has administrative control over servers —
// the clustering target of Section 5. Orgs may own an AS, live entirely
// inside third-party networks, or both.
type Org struct {
	ID   int32
	Name string
	// Domain is the org's primary DNS domain, the root that SOA-based
	// clustering should recover.
	Domain string
	Kind   OrgKind
	// HomeAS is the index of the AS the org owns, or -1 (players like
	// CDN77 have no ASN at all and are invisible to AS-level views).
	HomeAS int32
	// Weight is the org's share of server-related traffic demand.
	Weight float64
	// DNSProvider is the org index of the third-party DNS operator
	// holding this org's SOA records, or -1 when DNS is self-hosted.
	// Outsourced SOA is what pushes servers from clustering step 1
	// into step 2.
	DNSProvider int32
	// AssignsNames says the org names its servers under its own domain
	// even inside third-party ASes (the Akamai/Google pattern that
	// keeps step-1 clustering possible there).
	AssignsNames bool
	// PublishesServerIPs marks orgs that publicly list their servers
	// (CDN77 pattern).
	PublishesServerIPs bool
	// NumSites is the number of distinct web sites whose content the
	// org is responsible for delivering.
	NumSites int
	// ServerStart/ServerCount delimit the org's contiguous slice in
	// World.Servers.
	ServerStart, ServerCount int32
}

// Servers returns the org's servers as a slice of World.Servers.
func (w *World) OrgServers(orgIdx int32) []Server {
	o := &w.Orgs[orgIdx]
	return w.Servers[o.ServerStart : o.ServerStart+o.ServerCount]
}

// SpecialIndex points at the cast of named players that the experiments
// track individually (each is an analog of a company in the paper).
type SpecialIndex struct {
	// ResellerAS is the member AS acting as an IXP reseller.
	ResellerAS int32

	AcmeCDN      int32 // Akamai analog: massive deploy-in-ISP CDN
	GlobalSearch int32 // Google analog
	CloudShield  int32 // CloudFlare analog: own data centers only
	HetzHost     int32 // large hoster analog (AS92572, 90K+ servers)
	MidHostA     int32 // large hoster analog (AS56740, 50K+)
	MidHostB     int32 // large hoster analog (AS50099, 50K+)
	OVHHost      int32 // hoster analog
	LeaseHost    int32 // hoster/CDN hybrid analog (Leaseweb)
	MegaHost     int32 // AS36351 analog: hosts 350+ third-party orgs
	VKont        int32 // VKontakte analog (RU content)
	LimeCDN      int32 // Limelight analog (machine-to-machine traffic)
	EdgeCDN      int32 // EdgeCast analog
	NimbusCloud  int32 // cloud provider hit by the week-44 hurricane
	ElastiCloud  int32 // Amazon analog: EC2-style cloud + CDN part
	CDN77        int32 // no-ASN CDN that publishes its server IPs
	OneClick     int32 // Rapidshare analog
	EwekaOp      int32 // operator whose servers also act as clients

	DNSProviders []int32 // third-party DNS operators
}

// specialSpec describes one special org to generate.
type specialSpec struct {
	field      *int32
	name       string
	domain     string
	kind       OrgKind
	weight     float64 // traffic weight relative to total server traffic
	paperCount int     // server count at paper scale (NumServers = 2.4M)
	hasAS      bool
	memberAS   bool
	country    string
	sites      int
	assigns    bool
	publishes  bool
}

// specialSpecs returns the cast. Called on a World so the field pointers
// target w.Special.
func (w *World) specialSpecs() []specialSpec {
	s := &w.Special
	return []specialSpec{
		{&s.AcmeCDN, "acme-cdn", "acmecdn.net", OrgCDNDeploy, 0.175, 100_000, true, true, "US", 40, true, false},
		{&s.GlobalSearch, "globalsearch", "globalsearch.com", OrgSearch, 0.115, 19_000, true, true, "US", 12, true, false},
		{&s.HetzHost, "hetzner-like", "hetzhost.de", OrgHoster, 0.055, 95_000, true, true, "DE", 900, true, false},
		{&s.VKont, "vkontakt-like", "vkont.ru", OrgContent, 0.045, 10_000, true, true, "RU", 4, true, false},
		{&s.LeaseHost, "leaseweb-like", "leasehost.nl", OrgHoster, 0.035, 30_000, true, true, "NL", 500, true, false},
		{&s.LimeCDN, "limelight-like", "limecdn.com", OrgCDNCentral, 0.030, 12_000, true, true, "US", 25, true, false},
		{&s.OVHHost, "ovh-like", "ovhhost.fr", OrgHoster, 0.025, 45_000, true, true, "FR", 700, true, false},
		{&s.EdgeCDN, "edgecast-like", "edgecdn.com", OrgCDNCentral, 0.022, 10_000, true, true, "US", 20, true, false},
		{&s.CloudShield, "cloudshield", "cloudshield.com", OrgCDNCentral, 0.020, 9_000, true, true, "US", 60, true, false},
		{&s.MidHostA, "bighost-a", "bighost-a.com", OrgHoster, 0.012, 55_000, true, false, "US", 600, true, false},
		{&s.MidHostB, "bighost-b", "bighost-b.net", OrgHoster, 0.011, 52_000, true, false, "RU", 550, true, false},
		{&s.MegaHost, "megahost", "megahost.com", OrgHoster, 0.015, 15_000, true, true, "US", 800, true, false},
		{&s.NimbusCloud, "nimbus-cloud", "nimbuscloud.com", OrgCloud, 0.015, 14_000, true, true, "US", 80, true, false},
		{&s.ElastiCloud, "elasticloud", "elasticloud.com", OrgCloud, 0.018, 14_000, true, true, "US", 100, true, false},
		{&s.CDN77, "lowcost-cdn", "lowcostcdn.com", OrgCDNCentral, 0.004, 600, false, false, "CZ", 10, true, true},
		{&s.OneClick, "oneclick-host", "oneclick.cc", OrgOneClick, 0.012, 800, true, false, "NL", 2, true, false},
		{&s.EwekaOp, "eweka-like", "ewekaop.nl", OrgContent, 0.008, 500, true, false, "NL", 3, true, false},
	}
}

// tlds used for generic org domains.
var orgTLDs = []string{"com", "net", "org", "de", "co.uk", "fr", "ru", "nl", "cz", "it", "pl", "io"}

// genOrgs creates the organization population: the special cast first,
// then generic orgs with Zipf-distributed popularity and Pareto-ish
// server counts.
func (w *World) genOrgs(rng *rand.Rand) {
	cfg := &w.Cfg
	specs := w.specialSpecs()
	nSpecial := len(specs)
	nDNSProv := 3
	total := cfg.NumOrgs
	if total < nSpecial+nDNSProv+10 {
		total = nSpecial + nDNSProv + 10
	}
	w.Orgs = make([]Org, 0, total)

	// Member AS indices are handed to special member orgs in order,
	// skipping the reseller.
	nextMemberAS := int32(0)
	takeMemberAS := func() int32 {
		for nextMemberAS == w.Special.ResellerAS {
			nextMemberAS++
		}
		as := nextMemberAS
		nextMemberAS++
		return as
	}
	// Non-member AS pool for specials without membership: early
	// distance-1 hoster-ish ASes (deterministic walk).
	nextD1AS := int32(cfg.MembersEnd)

	for _, sp := range specs {
		id := int32(len(w.Orgs))
		*sp.field = id
		home := int32(-1)
		if sp.hasAS {
			if sp.memberAS {
				home = takeMemberAS()
			} else {
				home = nextD1AS
				nextD1AS++
			}
			w.setASCountry(home, sp.country)
			w.ASes[home].Role = roleForOrgKind(sp.kind)
		}
		w.Orgs = append(w.Orgs, Org{
			ID: id, Name: sp.name, Domain: sp.domain, Kind: sp.kind,
			HomeAS: home, Weight: sp.weight, DNSProvider: -1,
			AssignsNames: sp.assigns, PublishesServerIPs: sp.publishes,
			NumSites: sp.sites,
		})
	}

	// DNS provider orgs (SOA outsourcing targets).
	for i := 0; i < nDNSProv; i++ {
		id := int32(len(w.Orgs))
		w.Special.DNSProviders = append(w.Special.DNSProviders, id)
		home := nextD1AS
		nextD1AS++
		w.ASes[home].Role = RoleEnterprise
		w.Orgs = append(w.Orgs, Org{
			ID: id, Name: fmt.Sprintf("dns-provider-%d", i),
			Domain: fmt.Sprintf("dnsprov%d.net", i), Kind: OrgDNSProvider,
			HomeAS: home, Weight: 0.0003, DNSProvider: -1,
			AssignsNames: true, NumSites: 1,
		})
	}

	// Generic orgs. Popularity is Zipf; the remaining traffic weight
	// budget (1 - specials) is shared among them.
	nGeneric := total - len(w.Orgs)
	specialWeight := 0.0
	for i := range w.Orgs {
		specialWeight += w.Orgs[i].Weight
	}
	zw := randutil.ZipfWeights(nGeneric, 1.02)
	zTotal := 0.0
	for _, v := range zw {
		zTotal += v
	}
	// Candidate home ASes for generic orgs that own one: any non-member
	// AS not already taken. About 30% of generic orgs own an AS.
	for i := 0; i < nGeneric; i++ {
		id := int32(len(w.Orgs))
		kind := genericOrgKind(rng, i)
		home := int32(-1)
		if rng.Float64() < 0.30 && int(nextD1AS) < cfg.NumASes-1 {
			// Owned ASes are drawn sequentially; interleave with a
			// random skip so org order does not equal AS order.
			home = nextD1AS + int32(rng.Intn(3))
			if int(home) >= cfg.NumASes {
				home = int32(cfg.NumASes - 1)
			}
			nextD1AS = home + 1
		}
		dnsProv := int32(-1)
		// A third of generic orgs outsource DNS; hosters less often.
		outsourceProb := 0.34
		if kind == OrgHoster {
			outsourceProb = 0.10
		}
		if rng.Float64() < outsourceProb {
			dnsProv = w.Special.DNSProviders[rng.Intn(len(w.Special.DNSProviders))]
		}
		sites := 1 + rng.Intn(3)
		if kind == OrgHoster {
			sites = 20 + rng.Intn(300)
		}
		w.Orgs = append(w.Orgs, Org{
			ID:   id,
			Name: fmt.Sprintf("org-%05d", id),
			Domain: fmt.Sprintf("org%05d.%s", id,
				orgTLDs[rng.Intn(len(orgTLDs))]),
			Kind: kind, HomeAS: home,
			Weight:       (1 - specialWeight) * zw[i] / zTotal,
			DNSProvider:  dnsProv,
			AssignsNames: kind != OrgSmall || rng.Float64() < 0.5,
			NumSites:     sites,
		})
		if home >= 0 {
			w.ASes[home].Role = roleForOrgKind(kind)
		}
	}
}

// genericOrgKind draws the kind of the i-th generic org (rank order:
// popular generic orgs are more likely content/hosting businesses).
func genericOrgKind(rng *rand.Rand, rank int) OrgKind {
	r := rng.Float64()
	switch {
	case rank < 40 && r < 0.25:
		return OrgHoster
	case r < 0.06:
		return OrgHoster
	case r < 0.10:
		return OrgStreamer
	case r < 0.42:
		return OrgContent
	case r < 0.47:
		return OrgCloud
	default:
		return OrgSmall
	}
}

// setASCountry reassigns an AS's country, keeping its already-allocated
// prefixes (and hence the geo database) consistent.
func (w *World) setASCountry(asIdx int32, country string) {
	a := &w.ASes[asIdx]
	a.Country = country
	for _, pi := range a.Prefixes {
		p := &w.Prefixes[pi]
		if p.GeoCountry == p.Country {
			p.GeoCountry = country
		}
		p.Country = country
	}
}

// roleForOrgKind maps an org kind to the AS role of its home network.
func roleForOrgKind(k OrgKind) ASRole {
	switch k {
	case OrgCDNDeploy, OrgCDNCentral:
		return RoleCDN
	case OrgSearch, OrgContent, OrgStreamer, OrgOneClick:
		return RoleContent
	case OrgHoster:
		return RoleHoster
	case OrgCloud:
		return RoleCloud
	default:
		return RoleEnterprise
	}
}
