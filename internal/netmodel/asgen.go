package netmodel

import (
	"math/rand"

	"ixplens/internal/packet"
	"ixplens/internal/randutil"
	"ixplens/internal/routing"
)

// Class budget constants encode the paper's Table 3 structure: members
// (A(L)) are ~1% of ASes but hold ~10% of prefixes and see ~42% of
// client IP activity; distance-1 ASes (A(M)) hold ~34%/45%; the distant
// rest (A(G)) the remainder.
const (
	clientWeightLocal  = 0.42
	clientWeightMiddle = 0.45
	clientWeightGlobal = 0.13

	prefixShareLocal  = 0.101
	prefixShareMiddle = 0.341
	// global share is the remainder.
)

// genASes creates the AS population: the first cfg.MembersEnd indices
// are the IXP members (largest ASes), the rest split between distance-1
// and distance-2 attachment.
func (w *World) genASes(rng *rand.Rand) {
	cfg := &w.Cfg
	w.ASes = make([]AS, cfg.NumASes)

	clientCodes, clientWts := clientCountryTable()
	clientAlias := randutil.NewAlias(clientWts)

	// Member roles skew toward the big-infrastructure businesses that
	// actually populate large European IXPs.
	memberRoles := rolePicker([]ASRole{RoleEyeball, RoleTransit, RoleHoster, RoleCDN, RoleContent, RoleCloud, RoleEnterprise},
		[]float64{0.38, 0.16, 0.20, 0.04, 0.09, 0.05, 0.08})
	otherRoles := rolePicker([]ASRole{RoleEyeball, RoleTransit, RoleHoster, RoleCDN, RoleContent, RoleCloud, RoleEnterprise},
		[]float64{0.34, 0.05, 0.11, 0.01, 0.11, 0.02, 0.36})

	for i := range w.ASes {
		a := &w.ASes[i]
		a.ASN = asnBase + uint32(i)
		a.Upstream = -1
		a.ViaMember = int32(i)
	}

	// --- Members ---
	nMembers := cfg.MembersEnd
	joinable := nMembers - cfg.MembersStart
	for i := 0; i < nMembers; i++ {
		a := &w.ASes[i]
		a.Role = memberRoles(rng)
		a.Country = memberCountry(rng)
		if i < cfg.MembersStart {
			a.MemberWeek = cfg.FirstWeek
		} else {
			// Late joiners spread over weeks 36..last; the paper notes
			// 1-2 new members per week.
			slot := i - cfg.MembersStart
			week := cfg.FirstWeek + 1
			if joinable > 0 && cfg.Weeks > 1 {
				week = cfg.FirstWeek + 1 + slot*(cfg.Weeks-1)/joinable
			}
			if week > cfg.LastWeek() {
				week = cfg.LastWeek()
			}
			a.MemberWeek = week
			// Late joiners are regional/small organizations outside
			// central Europe (Section 4.1).
			a.Country = clientCodes[clientAlias.Sample(rng)]
			a.Role = RoleEnterprise
		}
	}
	// One established member is a reseller (Section 4.2).
	w.Special.ResellerAS = int32(cfg.MembersStart / 2)
	w.ASes[w.Special.ResellerAS].Role = RoleReseller

	// --- Non-members: attach at distance 1 or 2 ---
	nOther := cfg.NumASes - nMembers
	nDist1 := nOther * 49 / 100
	resellerCustomers := nDist1 / 25 // ~4% of distance-1 ASes sit behind the reseller
	for i := nMembers; i < cfg.NumASes; i++ {
		a := &w.ASes[i]
		a.Role = otherRoles(rng)
		a.Country = clientCodes[clientAlias.Sample(rng)]
		if i-nMembers < nDist1 {
			a.Distance = 1
			if i-nMembers < resellerCustomers {
				a.Upstream = w.Special.ResellerAS
				a.ResellerCustomer = true
			} else {
				a.Upstream = int32(rng.Intn(cfg.MembersStart))
			}
			a.ViaMember = a.Upstream
		} else {
			a.Distance = 2
			// Attach to a random distance-1 AS.
			up := int32(nMembers + rng.Intn(nDist1))
			a.Upstream = up
			a.ViaMember = w.ASes[up].ViaMember
		}
	}

	w.assignClientWeights(rng)
}

// assignClientWeights distributes the observable client-IP activity mass
// across ASes: fixed budgets per distance class, Zipf within a class.
func (w *World) assignClientWeights(rng *rand.Rand) {
	var classIdx [3][]int32
	for i := range w.ASes {
		classIdx[w.ASes[i].Distance] = append(classIdx[w.ASes[i].Distance], int32(i))
	}
	budgets := [3]float64{clientWeightLocal, clientWeightMiddle, clientWeightGlobal}
	for cls, idxs := range classIdx {
		if len(idxs) == 0 {
			continue
		}
		weights := randutil.ZipfWeights(len(idxs), 0.85)
		// Shuffle so rank does not correlate with generation order.
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		total := 0.0
		for _, wt := range weights {
			total += wt
		}
		for k, idx := range idxs {
			// Only eyeball-ish roles produce meaningful client activity.
			mult := 1.0
			switch w.ASes[idx].Role {
			case RoleEyeball:
				mult = 3.0
			case RoleEnterprise:
				mult = 0.8
			case RoleHoster, RoleCDN, RoleCloud:
				mult = 0.15
			case RoleTransit, RoleReseller:
				mult = 0.3
			}
			w.ASes[idx].ClientWeight = budgets[cls] * weights[k] / total * mult
		}
	}
}

// memberCountry draws the country of an established member: mostly the
// IXP's own country and its European neighbourhood, plus the global
// players that join large European IXPs.
func memberCountry(rng *rand.Rand) string {
	r := rng.Float64()
	switch {
	case r < 0.34:
		return "DE"
	case r < 0.44:
		return "US"
	case r < 0.50:
		return "RU"
	case r < 0.55:
		return "NL"
	case r < 0.60:
		return "GB"
	case r < 0.65:
		return "FR"
	case r < 0.69:
		return "CZ"
	case r < 0.73:
		return "IT"
	case r < 0.76:
		return "UA"
	case r < 0.78:
		return "CN"
	default:
		codes := []string{"AT", "CH", "PL", "SE", "DK", "ES", "RO", "TR", "BE", "FI", "NO", "HU", "EU", "IE"}
		return codes[rng.Intn(len(codes))]
	}
}

// rolePicker returns a closure drawing roles from a weighted table.
func rolePicker(roles []ASRole, weights []float64) func(*rand.Rand) ASRole {
	alias := randutil.NewAlias(weights)
	return func(rng *rand.Rand) ASRole { return roles[alias.Sample(rng)] }
}

// prefixLengths is the CIDR length distribution of routed prefixes,
// roughly matching public RIB statistics (half the table is /24s).
var prefixLengths = []struct {
	length uint8
	weight float64
}{
	{24, 0.50}, {23, 0.09}, {22, 0.12}, {21, 0.08},
	{20, 0.08}, {19, 0.05}, {18, 0.04}, {17, 0.02}, {16, 0.02},
}

// genPrefixes allocates address space to ASes: per-class prefix budgets,
// Zipf-skewed counts within a class, and a linear cursor walk over
// globally routable space so ranges never overlap.
func (w *World) genPrefixes(rng *rand.Rand) {
	cfg := &w.Cfg
	var classIdx [3][]int32
	for i := range w.ASes {
		classIdx[w.ASes[i].Distance] = append(classIdx[w.ASes[i].Distance], int32(i))
	}

	// Decide how many prefixes each AS gets: one guaranteed each, a
	// minimum of memberMinPrefixes for members (members are large
	// networks, and the cloud providers among them need enough prefixes
	// to spread over data-center regions), the rest by class budget
	// with cumulative rounding so truncation does not eat the budget.
	const memberMinPrefixes = 8
	counts := make([]int, cfg.NumASes)
	reserved := 0
	for i := range counts {
		if w.ASes[i].Distance == 0 {
			counts[i] = memberMinPrefixes
		} else {
			counts[i] = 1
		}
		reserved += counts[i]
	}
	remaining := cfg.NumPrefixes - reserved
	if remaining < 0 {
		remaining = 0
	}
	budgets := [3]float64{prefixShareLocal, prefixShareMiddle, 1 - prefixShareLocal - prefixShareMiddle}
	for cls, idxs := range classIdx {
		if len(idxs) == 0 {
			continue
		}
		classBudget := float64(remaining) * budgets[cls]
		weights := randutil.ZipfWeights(len(idxs), 0.8)
		total := 0.0
		for _, wt := range weights {
			total += wt
		}
		acc, given := 0.0, 0
		for k, idx := range idxs {
			acc += classBudget * weights[k] / total
			add := int(acc) - given
			counts[idx] += add
			given += add
		}
	}

	lenWeights := make([]float64, len(prefixLengths))
	for i, pl := range prefixLengths {
		lenWeights[i] = pl.weight
	}
	lenAlias := randutil.NewAlias(lenWeights)

	w.Prefixes = make([]Prefix, 0, cfg.NumPrefixes)
	cursor := uint32(packet.MakeIPv4(1, 0, 0, 0))
	for asIdx, n := range counts {
		a := &w.ASes[asIdx]
		for k := 0; k < n; k++ {
			length := prefixLengths[lenAlias.Sample(rng)].length
			p, next, ok := allocPrefix(cursor, length)
			if !ok {
				// Address space exhausted: stop allocating. With the
				// configured length mix this cannot happen below ~1M
				// prefixes, but degrade gracefully anyway.
				break
			}
			cursor = next
			geoCountry := a.Country
			if cfg.GeoErrorRate > 0 && rng.Float64() < cfg.GeoErrorRate {
				geoCountry = longTailCountries[rng.Intn(len(longTailCountries))]
			}
			w.Prefixes = append(w.Prefixes, Prefix{
				Prefix:     p,
				AS:         int32(asIdx),
				Country:    a.Country,
				GeoCountry: geoCountry,
			})
			a.Prefixes = append(a.Prefixes, int32(len(w.Prefixes)-1))
		}
	}
}

// allocPrefix returns the first routable, aligned prefix of the given
// length at or after cursor, plus the next cursor position.
func allocPrefix(cursor uint32, length uint8) (routing.Prefix, uint32, bool) {
	size := uint32(1) << (32 - length)
	for {
		// Align up.
		aligned := (cursor + size - 1) &^ (size - 1)
		if aligned < cursor { // wrapped
			return routing.Prefix{}, 0, false
		}
		first := packet.IPv4Addr(aligned)
		if aligned >= uint32(packet.MakeIPv4(223, 255, 255, 255)) {
			return routing.Prefix{}, 0, false
		}
		if first.IsGloballyRoutable() {
			p := routing.MakePrefix(first, length)
			return p, aligned + size, true
		}
		// Skip to the end of the reserved block containing first.
		cursor = skipReserved(aligned) // returns the next candidate
	}
}

// skipReserved returns the first address after the reserved block that
// contains addr.
func skipReserved(addr uint32) uint32 {
	a := packet.IPv4Addr(addr)
	switch {
	case a>>24 == 0, a>>24 == 10, a>>24 == 127:
		return (addr>>24 + 1) << 24
	case a >= packet.MakeIPv4(172, 16, 0, 0) && a <= packet.MakeIPv4(172, 31, 255, 255):
		return uint32(packet.MakeIPv4(172, 32, 0, 0))
	case uint32(a)>>16 == 192<<8|168:
		return uint32(packet.MakeIPv4(192, 169, 0, 0))
	case uint32(a)>>16 == 169<<8|254:
		return uint32(packet.MakeIPv4(169, 255, 0, 0))
	default:
		// Multicast and above: no room left.
		return ^uint32(0)
	}
}
