package netmodel

import (
	"fmt"
	"testing"

	"ixplens/internal/geo"
	"ixplens/internal/packet"
)

func tinyWorld(t testing.TB) *World {
	t.Helper()
	w, err := Generate(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	good := Tiny()
	if err := good.Validate(); err != nil {
		t.Fatalf("Tiny() invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Weeks = 0 },
		func(c *Config) { c.NumASes = 5 },
		func(c *Config) { c.NumPrefixes = c.NumASes - 1 },
		func(c *Config) { c.NumOrgs = 3 },
		func(c *Config) { c.NumServers = c.NumOrgs - 1 },
		func(c *Config) { c.MembersStart = 2 },
		func(c *Config) { c.MembersEnd = c.MembersStart - 1 },
		func(c *Config) { c.MembersEnd = c.NumASes },
		func(c *Config) { c.StableFraction = 0.7; c.RecurrentFraction = 0.5 },
		func(c *Config) { c.HTTPSFraction = 1.5 },
	}
	for i, mutate := range bad {
		c := Tiny()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestPaperScaleMonotone(t *testing.T) {
	small := PaperScale(0.002)
	big := PaperScale(0.05)
	if big.NumServers <= small.NumServers || big.NumASes <= small.NumASes {
		t.Fatal("scaling up must grow counts")
	}
	full := PaperScale(1)
	if full.NumASes != 42_800 || full.NumPrefixes != 445_000 {
		t.Fatalf("full scale wrong: %+v", full)
	}
}

func TestWeekHelpers(t *testing.T) {
	c := Tiny()
	if c.LastWeek() != 51 {
		t.Fatalf("LastWeek = %d", c.LastWeek())
	}
	if c.WeekIndex(35) != 0 || c.WeekIndex(51) != 16 {
		t.Fatal("WeekIndex wrong")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	w1 := tinyWorld(t)
	w2 := tinyWorld(t)
	if len(w1.Servers) != len(w2.Servers) || len(w1.Prefixes) != len(w2.Prefixes) {
		t.Fatal("generation is not deterministic in sizes")
	}
	for i := range w1.Servers {
		if w1.Servers[i] != w2.Servers[i] {
			t.Fatalf("server %d differs between runs", i)
		}
	}
}

func TestMembershipGrowth(t *testing.T) {
	w := tinyWorld(t)
	cfg := &w.Cfg
	first := w.NumMembersInWeek(cfg.FirstWeek)
	last := w.NumMembersInWeek(cfg.LastWeek())
	if first != cfg.MembersStart {
		t.Fatalf("week %d members = %d, want %d", cfg.FirstWeek, first, cfg.MembersStart)
	}
	if last != cfg.MembersEnd {
		t.Fatalf("week %d members = %d, want %d", cfg.LastWeek(), last, cfg.MembersEnd)
	}
	prev := first
	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		n := w.NumMembersInWeek(wk)
		if n < prev {
			t.Fatalf("membership shrank in week %d", wk)
		}
		prev = n
	}
}

func TestPrefixesDisjointAndRoutable(t *testing.T) {
	w := tinyWorld(t)
	if len(w.Prefixes) < w.Cfg.NumPrefixes*9/10 {
		t.Fatalf("allocated %d prefixes, want >= %d", len(w.Prefixes), w.Cfg.NumPrefixes*9/10)
	}
	// GeoDB build fails on overlap, so this doubles as the disjointness check.
	db := w.GeoDB()
	if db.NumRanges() == 0 {
		t.Fatal("geo db empty")
	}
	for i := range w.Prefixes {
		if !w.Prefixes[i].Prefix.First().IsGloballyRoutable() {
			t.Fatalf("prefix %v not routable", w.Prefixes[i].Prefix)
		}
	}
}

func TestEveryASHasPrefix(t *testing.T) {
	w := tinyWorld(t)
	for i := range w.ASes {
		if len(w.ASes[i].Prefixes) == 0 {
			t.Fatalf("AS index %d has no prefixes", i)
		}
	}
}

func TestRIBResolvesServerIPs(t *testing.T) {
	w := tinyWorld(t)
	rib := w.RIB()
	for i := range w.Servers {
		s := &w.Servers[i]
		asn, ok := rib.LookupASN(s.IP)
		if !ok {
			t.Fatalf("server IP %v not in RIB", s.IP)
		}
		if asn != w.ASes[s.AS].ASN {
			t.Fatalf("server IP %v resolves to AS%d, hosted in AS%d", s.IP, asn, w.ASes[s.AS].ASN)
		}
	}
}

func TestServerIPsUnique(t *testing.T) {
	w := tinyWorld(t)
	seen := make(map[packet.IPv4Addr]int, len(w.Servers))
	for i := range w.Servers {
		if j, dup := seen[w.Servers[i].IP]; dup {
			t.Fatalf("servers %d and %d share IP %v", i, j, w.Servers[i].IP)
		}
		seen[w.Servers[i].IP] = i
	}
	// Fake 443 endpoints must not collide with servers either.
	for _, f := range w.Fake443 {
		if _, dup := seen[f.IP]; dup {
			t.Fatalf("fake-443 endpoint reuses server IP %v", f.IP)
		}
	}
}

func TestOrgServerRanges(t *testing.T) {
	w := tinyWorld(t)
	covered := 0
	for i := range w.Orgs {
		o := &w.Orgs[i]
		covered += int(o.ServerCount)
		for _, s := range w.OrgServers(int32(i)) {
			if s.Org != int32(i) {
				t.Fatalf("org %d slice contains server of org %d", i, s.Org)
			}
		}
	}
	if covered != len(w.Servers) {
		t.Fatalf("org ranges cover %d servers of %d", covered, len(w.Servers))
	}
}

func TestSpecialOrgShapes(t *testing.T) {
	w := tinyWorld(t)
	acme := &w.Orgs[w.Special.AcmeCDN]
	if acme.Kind != OrgCDNDeploy || acme.HomeAS < 0 {
		t.Fatalf("acme-cdn misconfigured: %+v", acme)
	}
	// Acme must span many ASes with a mix of visibilities.
	ases := map[int32]bool{}
	var visible, private, far int
	for _, s := range w.OrgServers(w.Special.AcmeCDN) {
		ases[s.AS] = true
		switch s.Deploy {
		case DeployNormal:
			visible++
		case DeployPrivateCluster:
			private++
		case DeployFarRegion:
			far++
		}
	}
	if len(ases) < 5 {
		t.Fatalf("acme spans only %d ASes", len(ases))
	}
	if visible == 0 || private == 0 || far == 0 {
		t.Fatalf("acme deploy mix degenerate: %d/%d/%d", visible, private, far)
	}
	if float64(visible)/float64(visible+private+far) > 0.5 {
		t.Fatalf("acme visible share too high: %d of %d", visible, visible+private+far)
	}

	cdn77 := &w.Orgs[w.Special.CDN77]
	if cdn77.HomeAS != -1 || !cdn77.PublishesServerIPs {
		t.Fatalf("cdn77 analog misconfigured: %+v", cdn77)
	}
	if cdn77.ServerCount == 0 {
		t.Fatal("cdn77 has no servers")
	}

	shield := &w.Orgs[w.Special.CloudShield]
	for _, s := range w.OrgServers(w.Special.CloudShield) {
		if s.AS != shield.HomeAS {
			t.Fatal("cloudshield must host only in its own AS")
		}
	}
}

func TestCloudDCTags(t *testing.T) {
	w := tinyWorld(t)
	dcs := map[string]int{}
	for _, s := range w.OrgServers(w.Special.ElastiCloud) {
		if s.DC == "" {
			t.Fatal("cloud server without DC tag")
		}
		dcs[s.DC]++
	}
	if dcs["eu-dublin"] == 0 || dcs["us-east"] == 0 {
		t.Fatalf("elasticloud DC spread degenerate: %v", dcs)
	}
}

func TestActivityOracle(t *testing.T) {
	w := tinyWorld(t)
	cfg := &w.Cfg
	var stable, recurrent, fresh int
	for i := range w.Servers {
		s := &w.Servers[i]
		switch s.Activity {
		case ActStable:
			stable++
			for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
				if wk == 44 {
					continue // hurricane exception
				}
				if !w.ServerActiveInWeek(int32(i), wk) {
					t.Fatalf("stable server %d inactive in week %d", i, wk)
				}
			}
		case ActRecurrent:
			recurrent++
		case ActFresh:
			fresh++
			if int(s.FirstWeek) <= cfg.FirstWeek {
				t.Fatalf("fresh server %d first week %d too early", i, s.FirstWeek)
			}
			for wk := cfg.FirstWeek; wk < int(s.FirstWeek); wk++ {
				if w.ServerActiveInWeek(int32(i), wk) {
					t.Fatalf("fresh server %d active before first week", i)
				}
			}
			if s.FirstWeek != 44 { // hurricane week overrides activity
				if !w.ServerActiveInWeek(int32(i), int(s.FirstWeek)) {
					t.Fatalf("fresh server %d inactive in its first week", i)
				}
			}
		}
	}
	n := len(w.Servers)
	if stable < n/20 || stable > n/3 {
		t.Fatalf("stable pool %d of %d out of expected band", stable, n)
	}
	if fresh == 0 || recurrent == 0 {
		t.Fatal("activity mix degenerate")
	}
}

func TestHurricaneEvent(t *testing.T) {
	w := tinyWorld(t)
	darkened := 0
	for i := range w.Servers {
		s := &w.Servers[i]
		if s.Org == w.Special.NimbusCloud && s.DC == "us-east" {
			if w.ServerActiveInWeek(int32(i), 44) {
				t.Fatalf("nimbus us-east server %d active during hurricane week", i)
			}
			darkened++
		}
	}
	if darkened == 0 {
		t.Fatal("no nimbus us-east servers exist")
	}
}

func TestRecurrentActivityDeterministic(t *testing.T) {
	w := tinyWorld(t)
	for i := range w.Servers {
		if w.Servers[i].Activity != ActRecurrent {
			continue
		}
		a := w.ServerActiveInWeek(int32(i), 40)
		b := w.ServerActiveInWeek(int32(i), 40)
		if a != b {
			t.Fatal("activity oracle must be deterministic")
		}
		break
	}
}

func TestServerWeightsNormalizedPerOrg(t *testing.T) {
	w := tinyWorld(t)
	for i := range w.Orgs {
		if w.Orgs[i].ServerCount == 0 {
			continue
		}
		sum := 0.0
		for _, s := range w.OrgServers(int32(i)) {
			if s.Weight < 0 {
				t.Fatalf("negative weight in org %d", i)
			}
			sum += float64(s.Weight)
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("org %d weights sum to %v", i, sum)
		}
	}
}

func TestFrontendsExist(t *testing.T) {
	w := tinyWorld(t)
	n := 0
	for i := range w.Servers {
		if w.Servers[i].Is(SrvFrontend) {
			n++
		}
	}
	if n < 10 {
		t.Fatalf("only %d frontend servers", n)
	}
}

func TestOrgWeightsSumToOne(t *testing.T) {
	w := tinyWorld(t)
	sum := 0.0
	for i := range w.Orgs {
		sum += w.Orgs[i].Weight
	}
	if sum < 0.95 || sum > 1.05 {
		t.Fatalf("org weights sum to %v", sum)
	}
}

func TestDistanceClassesPopulated(t *testing.T) {
	w := tinyWorld(t)
	var byClass [3]int
	for i := range w.ASes {
		byClass[w.ASes[i].Distance]++
	}
	if byClass[0] != w.Cfg.MembersEnd {
		t.Fatalf("distance-0 count %d != members %d", byClass[0], w.Cfg.MembersEnd)
	}
	if byClass[1] == 0 || byClass[2] == 0 {
		t.Fatalf("distance classes empty: %v", byClass)
	}
	// ViaMember of every AS must be a member (or itself for members).
	for i := range w.ASes {
		a := &w.ASes[i]
		via := &w.ASes[a.ViaMember]
		if a.MemberWeek == 0 && via.MemberWeek == 0 {
			t.Fatalf("AS %d routes via non-member %d", i, a.ViaMember)
		}
	}
}

func TestASGraphMatchesDistances(t *testing.T) {
	w := tinyWorld(t)
	g := w.ASGraph()
	var members []uint32
	for i := range w.ASes {
		if w.ASes[i].IsMemberInWeek(w.Cfg.LastWeek()) {
			members = append(members, w.ASes[i].ASN)
		}
	}
	dist := g.Distances(members)
	for i := range w.ASes {
		a := &w.ASes[i]
		d := dist[a.ASN]
		if a.MemberWeek != 0 && d != 0 {
			t.Fatalf("member AS%d at graph distance %d", a.ASN, d)
		}
		if a.MemberWeek == 0 && int(a.Distance) != d {
			// Distance-2 ASes can actually be closer if their upstream
			// chain leads through a member quickly; only check bounds.
			if d < 1 || d > int(a.Distance) {
				t.Fatalf("AS%d declared distance %d, graph says %d", a.ASN, a.Distance, d)
			}
		}
	}
}

func TestGeoCountryOfServers(t *testing.T) {
	w := tinyWorld(t)
	db := w.GeoDB()
	mismatches := 0
	for i := range w.Servers {
		s := &w.Servers[i]
		got := db.Lookup(s.IP)
		if got == "" {
			t.Fatalf("server IP %v not geo-locatable", s.IP)
		}
		if got != w.Prefixes[s.PrefixIdx].GeoCountry {
			mismatches++
		}
	}
	if mismatches != 0 {
		t.Fatalf("%d servers geo-locate off their prefix country", mismatches)
	}
}

func TestRegionsCovered(t *testing.T) {
	w := tinyWorld(t)
	regions := map[string]int{}
	for i := range w.Servers {
		regions[geo.Region(w.Prefixes[w.Servers[i].PrefixIdx].Country)]++
	}
	for _, r := range geo.Regions {
		if regions[r] == 0 {
			t.Fatalf("no servers in region %s: %v", r, regions)
		}
	}
}

func TestHTTPSFractionRoughlyConfigured(t *testing.T) {
	w := tinyWorld(t)
	https := 0
	for i := range w.Servers {
		if w.Servers[i].Is(SrvHTTPS) {
			https++
		}
	}
	frac := float64(https) / float64(len(w.Servers))
	if frac < 0.08 || frac > 0.35 {
		t.Fatalf("HTTPS fraction %v far from configured %v", frac, w.Cfg.HTTPSFraction)
	}
}

func TestFake443Population(t *testing.T) {
	w := tinyWorld(t)
	if len(w.Fake443) == 0 {
		t.Fatal("no fake 443 endpoints")
	}
	behaviours := map[Fake443Behaviour]int{}
	for _, f := range w.Fake443 {
		behaviours[f.Behaviour]++
	}
	if len(behaviours) < 4 {
		t.Fatalf("fake 443 behaviour diversity too low: %v", behaviours)
	}
}

func TestServerByIP(t *testing.T) {
	w := tinyWorld(t)
	idx, ok := w.ServerByIP(w.Servers[10].IP)
	if !ok || idx != 10 {
		t.Fatalf("ServerByIP = %d,%v", idx, ok)
	}
	if _, ok := w.ServerByIP(packet.MakeIPv4(203, 0, 113, 254)); ok {
		t.Fatal("unknown IP should not resolve")
	}
}

func TestResellerCustomersGrow(t *testing.T) {
	w := tinyWorld(t)
	countActive := func(wk int) int {
		n := 0
		for i := range w.Servers {
			if w.ASes[w.Servers[i].AS].ResellerCustomer && w.ServerActiveInWeek(int32(i), wk) {
				n++
			}
		}
		return n
	}
	first := countActive(w.Cfg.FirstWeek)
	last := countActive(w.Cfg.LastWeek())
	if first == 0 {
		t.Skip("tiny world produced no reseller-hosted servers")
	}
	if float64(last) < float64(first)*1.3 {
		t.Fatalf("reseller fleet grew %d -> %d, want >= 1.3x", first, last)
	}
}

func TestASIndexByASN(t *testing.T) {
	w := tinyWorld(t)
	idx, ok := w.ASIndexByASN(w.ASes[5].ASN)
	if !ok || idx != 5 {
		t.Fatalf("ASIndexByASN = %d,%v", idx, ok)
	}
	if _, ok := w.ASIndexByASN(1); ok {
		t.Fatal("bogus ASN should not resolve")
	}
}

func TestRoleAndKindStrings(t *testing.T) {
	if RoleEyeball.String() != "eyeball" || RoleReseller.String() != "reseller" {
		t.Fatal("role names wrong")
	}
	if ASRole(99).String() == "" || OrgKind(99).String() == "" {
		t.Fatal("fallback names empty")
	}
	if OrgCDNDeploy.String() != "cdn-deploy" || OrgSmall.String() != "small" {
		t.Fatal("kind names wrong")
	}
}

func BenchmarkGenerateTiny(b *testing.B) {
	cfg := Tiny()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGenerateInvariantsAcrossSeeds re-checks the core structural
// invariants on several seeds, guarding against seed-specific tuning.
func TestGenerateInvariantsAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 2, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := Tiny()
			cfg.Seed = seed
			w, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Unique server IPs.
			seen := make(map[packet.IPv4Addr]bool, len(w.Servers))
			for i := range w.Servers {
				if seen[w.Servers[i].IP] {
					t.Fatalf("duplicate server IP at seed %d", seed)
				}
				seen[w.Servers[i].IP] = true
			}
			// Org weights normalized, server slices consistent.
			var orgSum float64
			covered := 0
			for i := range w.Orgs {
				orgSum += w.Orgs[i].Weight
				covered += int(w.Orgs[i].ServerCount)
			}
			if orgSum < 0.95 || orgSum > 1.05 {
				t.Fatalf("org weights sum %v at seed %d", orgSum, seed)
			}
			if covered != len(w.Servers) {
				t.Fatalf("org ranges cover %d of %d at seed %d", covered, len(w.Servers), seed)
			}
			// Geo database builds (disjoint prefixes) and covers servers.
			db := w.GeoDB()
			for i := 0; i < len(w.Servers); i += 97 {
				if db.Lookup(w.Servers[i].IP) == "" {
					t.Fatalf("server IP not geo-locatable at seed %d", seed)
				}
			}
			// Membership growth monotone.
			prev := 0
			for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
				n := w.NumMembersInWeek(wk)
				if n < prev {
					t.Fatalf("membership shrank at seed %d", seed)
				}
				prev = n
			}
		})
	}
}

// TestFullPaperScale generates the complete paper-scale world (42.8K
// ASes, 445K prefixes, ~2.3M server IPs) and spot-checks invariants.
// Takes a few seconds; skipped with -short.
func TestFullPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation skipped with -short")
	}
	cfg := PaperScale(1)
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.ASes) != 42_800 {
		t.Fatalf("ASes = %d", len(w.ASes))
	}
	if len(w.Prefixes) < 440_000 {
		t.Fatalf("prefixes = %d", len(w.Prefixes))
	}
	if len(w.Servers) < 2_000_000 {
		t.Fatalf("servers = %d", len(w.Servers))
	}
	if got := w.NumMembersInWeek(cfg.FirstWeek); got != 443 {
		t.Fatalf("initial members = %d, want 443", got)
	}
	if got := w.NumMembersInWeek(cfg.LastWeek()); got != 457 {
		t.Fatalf("final members = %d, want 457", got)
	}
	// The RIB must resolve a sample of server IPs to their hosting AS.
	rib := w.RIB()
	for i := 0; i < len(w.Servers); i += 50_000 {
		s := &w.Servers[i]
		asn, ok := rib.LookupASN(s.IP)
		if !ok || asn != w.ASes[s.AS].ASN {
			t.Fatalf("RIB broken for server %d", i)
		}
	}
	// Acme's fleet matches Akamai's published magnitudes.
	acme := &w.Orgs[w.Special.AcmeCDN]
	if acme.ServerCount < 90_000 || acme.ServerCount > 110_000 {
		t.Fatalf("acme fleet = %d, want ~100K", acme.ServerCount)
	}
	ases := map[int32]bool{}
	for _, s := range w.OrgServers(w.Special.AcmeCDN) {
		ases[s.AS] = true
	}
	if len(ases) < 500 {
		t.Fatalf("acme spans only %d ASes at full scale", len(ases))
	}
}
