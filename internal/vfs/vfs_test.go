package vfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// TestOSRoundTrip drives the passthrough through the operations the
// persistence paths use.
func TestOSRoundTrip(t *testing.T) {
	var fsys FS = OS{}
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := fsys.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sub, "x.txt")
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	raw, err := ReadFile(fsys, path)
	if err != nil || string(raw) != "hello" {
		t.Fatalf("read back %q, %v", raw, err)
	}
	if fi, err := fsys.Stat(path); err != nil || fi.Size() != 5 {
		t.Fatalf("stat: %v %v", fi, err)
	}
	if err := fsys.Truncate(path, 2); err != nil {
		t.Fatal(err)
	}
	moved := filepath.Join(sub, "y.txt")
	if err := fsys.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "y.txt" {
		t.Fatalf("readdir: %v %v", ents, err)
	}
	if err := fsys.Remove(moved); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Open(moved); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("open after remove: %v", err)
	}
}

// TestWriteFileAtomic: the happy path replaces the file whole and
// leaves no temp litter behind.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	if err := WriteFileAtomic(Default, path, []byte("v1"), ".data-*"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(Default, path, []byte("v2"), ".data-*"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil || string(raw) != "v2" {
		t.Fatalf("read back %q, %v", raw, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".data-") {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}
}

// TestIsStorageFull recognizes both the injected sentinel and a real
// ENOSPC, wrapped or bare.
func TestIsStorageFull(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrStorageFull, true},
		{&fs.PathError{Op: "write", Path: "x", Err: syscall.ENOSPC}, true},
		{syscall.ENOSPC, true},
		{errors.New("unrelated"), false},
		{syscall.EIO, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsStorageFull(c.err); got != c.want {
			t.Errorf("IsStorageFull(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
