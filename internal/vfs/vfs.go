// Package vfs is the filesystem seam every persistence path in the
// repository goes through: the capture block/campaign writers, the
// manifest and snapshot atomic writers, the supervisor's fsync'd
// journal and the serving layer's snapshot reads. The interface is
// deliberately small — exactly the operations those paths need — so a
// fault-injecting implementation (faultline.FS) can stand in for the
// real disk and every ENOSPC, short write, torn rename and lying fsync
// the production system must survive becomes a deterministic,
// reproducible test input instead of a 3am incident.
//
// The package also centralizes the crash-consistency idioms the
// persistence paths share: WriteFileAtomic (temp file in the target
// directory, write, fsync, close, rename, fsync the parent directory)
// and SyncDir (the parent-directory fsync without which a "durable"
// rename can vanish on power loss — POSIX only promises the rename is
// atomic, not that the directory entry has reached the platter).
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// ErrStorageFull is the typed out-of-space error the supervisor's
// degraded mode keys on. Real disks surface syscall.ENOSPC; injected
// quotas (faultline.FS) wrap this sentinel. Test with IsStorageFull,
// which accepts both.
var ErrStorageFull = errors.New("vfs: storage full")

// IsStorageFull reports whether err is an out-of-space condition —
// either the injected ErrStorageFull or a real ENOSPC from the kernel
// (possibly wrapped in an *fs.PathError).
func IsStorageFull(err error) bool {
	return errors.Is(err, ErrStorageFull) || errors.Is(err, syscall.ENOSPC)
}

// File is one open file. It is the subset of *os.File the persistence
// paths use; *os.File satisfies it directly.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.WriterAt
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	Stat() (fs.FileInfo, error)
	// Sync flushes the file's data to stable storage. A nil return is
	// the durability acknowledgement the crash-consistency paths build
	// on — an implementation that lies here (faultline's SyncCorrupt)
	// models firmware that acknowledges and then loses the write.
	Sync() error
	Truncate(size int64) error
}

// FS is the filesystem operations seam. All paths are interpreted as by
// the os package. Implementations must be safe for concurrent use.
type FS interface {
	Open(name string) (File, error)
	Create(name string) (File, error)
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a new temporary file in dir as os.CreateTemp
	// does; the atomic writers build their temp-then-rename on it.
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm fs.FileMode) error
	Stat(name string) (fs.FileInfo, error)
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making previously renamed or
	// created entries durable. Implementations should tolerate
	// filesystems that reject directory fsync (EINVAL/ENOTSUP).
	SyncDir(dir string) error
}

// OS is the passthrough implementation over the real filesystem.
type OS struct{}

// Default is the FS used when a caller does not thread an explicit one.
var Default FS = OS{}

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// Stat implements FS.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS. Directory fsync is how a rename or create
// becomes durable; filesystems that do not support it (some network and
// FUSE mounts return EINVAL or ENOTSUP) are tolerated — they offer no
// stronger primitive to fall back to.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}

// ReadFile reads the named file whole, like os.ReadFile but through the
// seam.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	raw, rerr := io.ReadAll(f)
	if cerr := f.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil {
		return nil, rerr
	}
	return raw, nil
}

// WriteFileAtomic writes data to path with full crash consistency: a
// temp file (tmpPattern, in path's directory) is written, fsynced and
// closed — all checked, so a full disk cannot leave a truncated file
// that parses as complete — then renamed over path, and the parent
// directory is fsynced so the rename itself survives power loss. On any
// failure the temp file is removed; path either keeps its old bytes or
// holds the complete new ones, never a mix.
func WriteFileAtomic(fsys FS, path string, data []byte, tmpPattern string) error {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, tmpPattern)
	if err != nil {
		return err
	}
	tmp := f.Name()
	discard := func(e error) error {
		f.Close()
		fsys.Remove(tmp)
		return e
	}
	if n, werr := f.Write(data); werr != nil {
		return discard(werr)
	} else if n != len(data) {
		return discard(io.ErrShortWrite)
	}
	if err := f.Sync(); err != nil {
		return discard(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}
