package randutil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	if SplitMix64(42) != SplitMix64(42) {
		t.Fatal("SplitMix64 must be a pure function")
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Fatal("distinct inputs should virtually never collide")
	}
}

func TestHashUnitRange(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		u := HashUnit(i, i*7)
		if u < 0 || u >= 1 {
			t.Fatalf("HashUnit out of range: %v", u)
		}
	}
}

func TestHashUnitUniformity(t *testing.T) {
	// Chi-square-lite check: bucket 100k hashes into 10 bins.
	var bins [10]int
	const n = 100_000
	for i := 0; i < n; i++ {
		bins[int(HashUnit(uint64(i))*10)]++
	}
	for b, c := range bins {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bin %d count %d deviates >2%% from uniform", b, c)
		}
	}
}

func TestHash64OrderSensitivity(t *testing.T) {
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Fatal("Hash64 must be order sensitive")
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 4)
	const n = 400_000
	for i := 0; i < n; i++ {
		counts[a.Sample(rng)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > want*0.05 {
			t.Errorf("outcome %d: %d draws, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestAliasSampleHashMatchesWeights(t *testing.T) {
	weights := []float64{5, 1, 1, 1, 2}
	a := NewAlias(weights)
	counts := make([]int, len(weights))
	const n = 500_000
	for i := 0; i < n; i++ {
		counts[a.SampleHash(Hash64(uint64(i)))]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w / total * n
		if math.Abs(float64(counts[i])-want) > want*0.05 {
			t.Errorf("outcome %d: %d draws, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestAliasZeroAndNegativeWeights(t *testing.T) {
	a := NewAlias([]float64{0, -3, 1})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		if got := a.Sample(rng); got != 2 {
			t.Fatalf("sampled zero-weight outcome %d", got)
		}
	}
}

func TestAliasPanicsOnBadInput(t *testing.T) {
	for _, weights := range [][]float64{nil, {}, {0, 0}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAlias(%v) should panic", weights)
				}
			}()
			NewAlias(weights)
		}()
	}
}

func TestAliasLen(t *testing.T) {
	if NewAlias([]float64{1, 1, 1}).Len() != 3 {
		t.Fatal("Len wrong")
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(100, 1.0)
	if len(w) != 100 {
		t.Fatalf("len = %d", len(w))
	}
	if w[0] != 1 {
		t.Fatalf("w[0] = %v", w[0])
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatal("Zipf weights must strictly decrease")
		}
	}
	if math.Abs(w[9]-0.1) > 1e-12 {
		t.Fatalf("w[9] = %v, want 0.1", w[9])
	}
}

// TestQuickAliasSampleInRange: sampling never escapes the index range
// whatever the (valid) weights.
func TestQuickAliasSampleInRange(t *testing.T) {
	prop := func(seed int64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		weights := make([]float64, len(raw))
		anyPos := false
		for i, r := range raw {
			weights[i] = float64(r)
			if r > 0 {
				anyPos = true
			}
		}
		if !anyPos {
			return true
		}
		a := NewAlias(weights)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			k := a.Sample(rng)
			if k < 0 || k >= len(weights) || weights[k] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Shuffled(50, rng)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func BenchmarkAliasSample(b *testing.B) {
	a := NewAlias(ZipfWeights(100_000, 0.9))
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(rng)
	}
}

func BenchmarkHashUnit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HashUnit(uint64(i), 12345)
	}
}
