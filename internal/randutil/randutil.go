// Package randutil provides the deterministic randomness primitives the
// world generator is built on: a fast stateless hash (for reproducible
// per-entity, per-week decisions), Walker's alias method for O(1)
// weighted sampling, and Zipf weight construction for the heavy-tailed
// popularity distributions that dominate Internet traffic.
package randutil

import (
	"math"
	"math/rand"
)

// SplitMix64 is the splitmix64 finalizer: a high-quality stateless
// 64-bit mix. Feeding it a composite key (seed ^ entity ^ week) yields
// stable per-entity randomness that both the traffic generator and the
// ground-truth evaluation can recompute independently.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashUnit maps a composite key to a float64 in [0, 1).
func HashUnit(parts ...uint64) float64 {
	h := uint64(0x7c0ffee123456789)
	for _, p := range parts {
		h = SplitMix64(h ^ p)
	}
	return float64(h>>11) / float64(1<<53)
}

// Hash64 combines parts into a single 64-bit hash.
func Hash64(parts ...uint64) uint64 {
	h := uint64(0xa5a5a5a5deadbeef)
	for _, p := range parts {
		h = SplitMix64(h ^ p)
	}
	return h
}

// Alias is a Walker alias table for O(1) sampling from a fixed discrete
// distribution. Construction is O(n).
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table over weights. Non-positive weights get
// probability zero. NewAlias panics if no weight is positive, since
// sampling would be meaningless.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("randutil: empty weight vector")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("randutil: no positive weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1
	}
	return a
}

// Sample draws one index using rng.
func (a *Alias) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// SampleHash draws one index from a 64-bit hash value, for stateless
// deterministic sampling.
func (a *Alias) SampleHash(h uint64) int {
	n := uint64(len(a.prob))
	i := int(h % n)
	u := float64(SplitMix64(h)>>11) / float64(1<<53)
	if u < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }

// ZipfWeights returns n weights following a Zipf law with exponent s:
// weight(rank k) = 1/(k+1)^s. These model the popularity skew of
// organizations, servers and sites.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
	}
	return w
}

// Shuffled returns a permutation of 0..n-1 drawn from rng.
func Shuffled(n int, rng *rand.Rand) []int {
	p := rng.Perm(n)
	return p
}
