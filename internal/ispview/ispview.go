// Package ispview simulates the IXP-external vantage point the paper
// uses for cross-validation (Sections 2.3 and 3.1): the HTTP and DNS
// logs of a large European Tier-1 ISP that does not exchange traffic
// over the IXP's public switching fabric. From its logs one obtains the
// set of Web server IPs its customers contact — including servers the
// IXP can never see, such as CDN private clusters deployed inside the
// ISP itself.
package ispview

import (
	"fmt"
	"math/rand"

	"ixplens/internal/dnssim"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
)

// Log is the server-IP view extracted from the ISP's HTTP/DNS logs.
type Log struct {
	// ISPAS is the vantage ISP's AS index.
	ISPAS int32
	// ServerIPs are the server IPs the ISP's clients contacted.
	ServerIPs map[packet.IPv4Addr]bool
}

// PickISP selects the vantage ISP: the largest eyeball network that is
// not an IXP member (a Tier-1 whose traffic does not cross the public
// fabric).
func PickISP(w *netmodel.World) (int32, error) {
	// Large eyeballs typically host CDN private clusters; prefer one
	// that does so the vantage exhibits the paper's "servers the IXP
	// can never see" property.
	hostsCluster := make(map[int32]bool)
	for i := range w.Servers {
		if w.Servers[i].Deploy == netmodel.DeployPrivateCluster {
			hostsCluster[w.Servers[i].AS] = true
		}
	}
	best, bestClustered := int32(-1), int32(-1)
	var bestWeight, bestClusteredWeight float64
	for i := range w.ASes {
		a := &w.ASes[i]
		if a.MemberWeek != 0 || a.Role != netmodel.RoleEyeball {
			continue
		}
		if a.ClientWeight > bestWeight {
			bestWeight = a.ClientWeight
			best = int32(i)
		}
		if hostsCluster[int32(i)] && a.ClientWeight > bestClusteredWeight {
			bestClusteredWeight = a.ClientWeight
			bestClustered = int32(i)
		}
	}
	if bestClustered >= 0 {
		return bestClustered, nil
	}
	if best < 0 {
		return 0, fmt.Errorf("ispview: no non-member eyeball AS in world")
	}
	return best, nil
}

// Observe produces one week of the ISP's server-IP log. Its clients
// fetch nFlows sites drawn from global popularity (with a uniform tail
// mix, since an ISP's clients also reach obscure sites); each fetch is
// resolved through the ISP's own resolver, which hands out private
// clusters inside the ISP where they exist.
func Observe(w *netmodel.World, dns *dnssim.DB, ispAS int32, isoWeek int, nFlows int) *Log {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ int64(isoWeek)*0x1259 ^ int64(ispAS)))
	sites := dns.Sites()
	log := &Log{ISPAS: ispAS, ServerIPs: make(map[packet.IPv4Addr]bool, nFlows/4)}
	for i := 0; i < nFlows; i++ {
		var domain string
		if rng.Float64() < 0.8 {
			// Popularity-weighted pick (quadratic skew toward the head).
			u := rng.Float64()
			domain = sites[int(u*u*float64(len(sites)))].Domain
		} else {
			domain = sites[rng.Intn(len(sites))].Domain
		}
		// Repeated fetches see rotating authority answers.
		ip, ok := dns.ResolveVaried(domain, ispAS, rng.Uint64())
		if !ok {
			continue
		}
		idx, ok := w.ServerByIP(ip)
		if !ok || !w.ServerActiveInWeek(idx, isoWeek) {
			continue
		}
		log.ServerIPs[ip] = true
	}
	return log
}

// Compare is the Section 3.1 cross-check: how the ISP's server view
// relates to the IXP's.
type Compare struct {
	ISPServers int
	SeenAtIXP  int
	NotAtIXP   int
	// ConfirmedAtIXP is the overlap in which the IXP's (sample-based)
	// identification is corroborated by the ISP's (log-based) one.
	ConfirmedAtIXP int
}

// CompareWithIXP evaluates the ISP log against the IXP's identified
// server set.
func CompareWithIXP(log *Log, ixpServers map[packet.IPv4Addr]bool) Compare {
	var c Compare
	c.ISPServers = len(log.ServerIPs)
	for ip := range log.ServerIPs {
		if ixpServers[ip] {
			c.SeenAtIXP++
			c.ConfirmedAtIXP++
		} else {
			c.NotAtIXP++
		}
	}
	return c
}
