package ispview

import (
	"testing"

	"ixplens/internal/dnssim"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
)

func testWorld(t testing.TB) (*netmodel.World, *dnssim.DB) {
	t.Helper()
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return w, dnssim.New(w)
}

func TestPickISP(t *testing.T) {
	w, _ := testWorld(t)
	isp, err := PickISP(w)
	if err != nil {
		t.Fatal(err)
	}
	a := &w.ASes[isp]
	if a.MemberWeek != 0 {
		t.Fatal("ISP is an IXP member")
	}
	if a.Role != netmodel.RoleEyeball {
		t.Fatalf("ISP role %v, want eyeball", a.Role)
	}
	// It must be the largest non-member eyeball among those hosting a
	// private cluster (or the largest overall when none do).
	hostsCluster := map[int32]bool{}
	for i := range w.Servers {
		if w.Servers[i].Deploy == netmodel.DeployPrivateCluster {
			hostsCluster[w.Servers[i].AS] = true
		}
	}
	for i := range w.ASes {
		b := &w.ASes[i]
		if b.MemberWeek == 0 && b.Role == netmodel.RoleEyeball &&
			hostsCluster[int32(i)] == hostsCluster[isp] && b.ClientWeight > a.ClientWeight {
			t.Fatalf("AS %d has larger client weight than picked ISP", i)
		}
	}
}

func TestObserveDeterministicAndValid(t *testing.T) {
	w, dns := testWorld(t)
	isp, err := PickISP(w)
	if err != nil {
		t.Fatal(err)
	}
	log1 := Observe(w, dns, isp, 45, 5000)
	log2 := Observe(w, dns, isp, 45, 5000)
	if len(log1.ServerIPs) != len(log2.ServerIPs) {
		t.Fatal("observation not deterministic")
	}
	if len(log1.ServerIPs) == 0 {
		t.Fatal("ISP saw nothing")
	}
	for ip := range log1.ServerIPs {
		idx, ok := w.ServerByIP(ip)
		if !ok {
			t.Fatalf("ISP logged non-server IP %v", ip)
		}
		if !w.ServerActiveInWeek(idx, 45) {
			t.Fatalf("ISP logged inactive server %v", ip)
		}
	}
}

func TestObserveSeesOwnPrivateClusters(t *testing.T) {
	w, dns := testWorld(t)
	// Find an AS hosting a private cluster and use it as the vantage.
	var vantage int32 = -1
	for i := range w.Servers {
		s := &w.Servers[i]
		if s.Deploy == netmodel.DeployPrivateCluster && w.ASes[s.AS].MemberWeek == 0 {
			vantage = s.AS
			break
		}
	}
	if vantage == -1 {
		t.Skip("no non-member private clusters")
	}
	log := Observe(w, dns, vantage, 45, 40000)
	foundPrivate := false
	for ip := range log.ServerIPs {
		idx, _ := w.ServerByIP(ip)
		if w.Servers[idx].Deploy == netmodel.DeployPrivateCluster && w.Servers[idx].AS == vantage {
			foundPrivate = true
			break
		}
	}
	if !foundPrivate {
		t.Fatal("vantage ISP never saw its in-AS private clusters")
	}
}

func TestCompareWithIXP(t *testing.T) {
	log := &Log{ServerIPs: map[packet.IPv4Addr]bool{
		packet.MakeIPv4(1, 0, 0, 1): true,
		packet.MakeIPv4(1, 0, 0, 2): true,
		packet.MakeIPv4(1, 0, 0, 3): true,
	}}
	ixp := map[packet.IPv4Addr]bool{
		packet.MakeIPv4(1, 0, 0, 1): true,
		packet.MakeIPv4(1, 0, 0, 2): true,
	}
	c := CompareWithIXP(log, ixp)
	if c.ISPServers != 3 || c.SeenAtIXP != 2 || c.NotAtIXP != 1 || c.ConfirmedAtIXP != 2 {
		t.Fatalf("compare wrong: %+v", c)
	}
}
