package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The registry currently exposed over HTTP. expvar.Publish is global and
// forbids re-publishing a name, so the "ixplens" var is registered once
// and indirects through this pointer; a later Serve call (tests, a
// second campaign in one process) swaps the registry atomically.
var (
	servedRegistry atomic.Pointer[Registry]
	publishOnce    sync.Once
)

// Serve exposes the registry on an HTTP debug endpoint: expvar-style
// JSON at /debug/vars (the registry appears under the "ixplens" key,
// next to the standard cmdline/memstats vars) and the pprof suite under
// /debug/pprof/. It listens on addr (":0" picks a free port), serves in
// a background goroutine, and returns the bound address plus a closer
// that stops the listener. This is the -debug-addr implementation of the
// command-line tools.
func Serve(addr string, r *Registry) (string, func() error, error) {
	servedRegistry.Store(r)
	publishOnce.Do(func() {
		expvar.Publish("ixplens", expvar.Func(func() interface{} {
			return servedRegistry.Load().expvarValue()
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	go func() {
		// Serve returns when the listener closes; nothing to report.
		_ = http.Serve(ln, mux)
	}()
	return ln.Addr().String(), ln.Close, nil
}
