package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers bits.Len64 of every uint64: bucket 0 holds the value
// zero, bucket i holds values in [2^(i-1), 2^i).
const numBuckets = 65

// Histogram records a distribution of non-negative values (bytes,
// nanoseconds) in power-of-two buckets. All methods are safe for
// concurrent use; a nil Histogram ignores observations. Quantile reads
// taken while writers are active are approximate — each bucket is
// internally consistent but the set is not snapshotted atomically —
// which is the usual, acceptable contract for monitoring reads.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(uint64(time.Since(start)))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound for the q-th quantile (0 < q ≤ 1): the
// top of the first bucket whose cumulative count reaches q. Zero when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	// The q-th quantile is the smallest rank r with r/n ≥ q, i.e.
	// ceil(q·n). Truncating instead of rounding up under-reported by up
	// to one observation — with 3 observations, P50 returned the 1st
	// (floor(1.5) = 1) rather than the 2nd, the median.
	target := uint64(math.Ceil(q * float64(n)))
	if target == 0 {
		target = 1
	}
	if target > n {
		target = n
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return bucketUpper(numBuckets - 1)
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// HistogramSummary is the rendered form of a histogram, used by the text
// snapshot and the expvar endpoint.
type HistogramSummary struct {
	Count uint64
	Sum   uint64
	Mean  float64
	P50   uint64
	P90   uint64
	P99   uint64
}

// Summary computes the histogram's summary statistics.
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	return HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}
