// Package obs is the pipeline's zero-dependency observability layer:
// atomic counters, gauges and log2-bucketed histograms collected in a
// named Registry, a plain-text end-of-run snapshot, and an opt-in
// expvar/pprof HTTP endpoint (see Serve).
//
// The layer is built to cost nothing when unused. Every metric type is
// nil-safe — methods on a nil *Counter, *Gauge or *Histogram are no-ops,
// and a nil *Registry hands out nil metrics — so instrumented code holds
// plain metric pointers and pays one predictable branch per event when
// observability is disabled. Hot paths that would need extra work to
// feed a metric (a time.Now call, a queue-length read) additionally gate
// on a nil check of their metrics bundle, keeping the disabled path free
// of clock reads.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event tally. The zero value is
// ready to use; a nil Counter ignores writes and reads as zero.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (queue depth, utilization). The zero
// value is ready to use; a nil Gauge ignores writes and reads as zero.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry names and owns a process's metrics. The zero value is not
// useful — use NewRegistry — but a nil *Registry is valid everywhere and
// hands out nil (no-op) metrics, which is how instrumentation is
// disabled.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Counters snapshots every counter's current value by name.
func (r *Registry) Counters() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// snapshot materializes a stable view for rendering.
type snapshot struct {
	counters   map[string]uint64
	gauges     map[string]int64
	histograms map[string]HistogramSummary
}

func (r *Registry) snapshot() snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := snapshot{
		counters:   make(map[string]uint64, len(r.counters)),
		gauges:     make(map[string]int64, len(r.gauges)),
		histograms: make(map[string]HistogramSummary, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.histograms[name] = h.Summary()
	}
	return s
}

// expvarValue renders the registry as a JSON-marshalable tree, the shape
// served under the "ixplens" key of the /debug/vars endpoint.
func (r *Registry) expvarValue() interface{} {
	if r == nil {
		return nil
	}
	s := r.snapshot()
	return map[string]interface{}{
		"counters":   s.counters,
		"gauges":     s.gauges,
		"histograms": s.histograms,
	}
}

// WriteText prints a sorted, human-readable snapshot of every metric —
// the end-of-run summary the command-line tools emit.
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	s := r.snapshot()
	names := make([]string, 0, len(s.counters))
	for name := range s.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "counter  %-48s %d\n", name, s.counters[name])
	}
	names = names[:0]
	for name := range s.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "gauge    %-48s %d\n", name, s.gauges[name])
	}
	names = names[:0]
	for name := range s.histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.histograms[name]
		fmt.Fprintf(w, "hist     %-48s count=%d sum=%d mean=%.1f p50≤%d p90≤%d p99≤%d\n",
			name, h.Count, h.Sum, h.Mean, h.P50, h.P90, h.P99)
	}
}
