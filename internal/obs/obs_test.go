package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil counter read non-zero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge read non-zero")
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram read non-zero")
	}
	if s := h.Summary(); s.Count != 0 {
		t.Fatal("nil histogram summary non-zero")
	}
}

func TestNilRegistryHandsOutNilMetrics(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry created metrics")
	}
	if r.Counters() != nil {
		t.Fatal("nil registry snapshot non-nil")
	}
	r.WriteText(io.Discard) // must not panic
}

func TestRegistryReturnsSameMetricPerName(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity lost")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge identity lost")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram identity lost")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Fatal("distinct names share a counter")
	}
}

// TestConcurrentWriters drives every metric type from many goroutines;
// the totals must be exact (run under -race in CI).
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("events")
			g := r.Gauge("level")
			h := r.Histogram("sizes")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(i % 1024))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("events").Value(); got != workers*perWorker {
		t.Fatalf("counter lost updates: %d", got)
	}
	if got := r.Gauge("level").Value(); got != workers*perWorker {
		t.Fatalf("gauge lost updates: %d", got)
	}
	h := r.Histogram("sizes")
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram lost observations: %d", h.Count())
	}
	var wantSum uint64
	for i := 0; i < perWorker; i++ {
		wantSum += uint64(i % 1024)
	}
	if h.Sum() != workers*wantSum {
		t.Fatalf("histogram sum %d, want %d", h.Sum(), workers*wantSum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 small values, 10 large: p50 must bound the small cohort, p99
	// the large one.
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket upper bound 127
	}
	for i := 0; i < 10; i++ {
		h.Observe(100_000) // bucket upper bound 131071
	}
	if p50 := h.Quantile(0.50); p50 != 127 {
		t.Fatalf("p50 = %d, want 127", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 131071 {
		t.Fatalf("p99 = %d, want 131071", p99)
	}
	if h.Mean() < 100 || h.Mean() > 100_000 {
		t.Fatalf("mean %.1f out of range", h.Mean())
	}
}

// TestHistogramQuantileSmallN pins the ceiling-rank definition: the
// q-th quantile of n observations is the one at rank ceil(q·n). The old
// floor-based rank under-reported small samples — the median of three
// observations came back as the smallest one.
func TestHistogramQuantileSmallN(t *testing.T) {
	var h Histogram
	h.Observe(1) // bucket upper 1
	h.Observe(2) // bucket upper 3
	h.Observe(4) // bucket upper 7
	if p50 := h.Quantile(0.50); p50 != 3 {
		t.Fatalf("median of {1,2,4} reported as %d, want 3 (the middle observation's bucket)", p50)
	}
	if p90 := h.Quantile(0.90); p90 != 7 {
		t.Fatalf("p90 of {1,2,4} = %d, want 7", p90)
	}

	// Two observations: P50 is the first (ceil(0.5·2) = 1), P99 the
	// second.
	var h2 Histogram
	h2.Observe(1)
	h2.Observe(1000) // bucket upper 1023
	if p50 := h2.Quantile(0.50); p50 != 1 {
		t.Fatalf("p50 of {1,1000} = %d, want 1", p50)
	}
	if p99 := h2.Quantile(0.99); p99 != 1023 {
		t.Fatalf("p99 of {1,1000} = %d, want 1023", p99)
	}

	// One observation: every quantile is that observation.
	var h1 Histogram
	h1.Observe(5) // bucket upper 7
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if v := h1.Quantile(q); v != 7 {
			t.Fatalf("quantile %.2f of a single observation = %d, want 7", q, v)
		}
	}

	// Exact boundary: with 10 observations, P90 is rank 9 — still
	// inside the small cohort, not beyond it.
	var h10 Histogram
	for i := 0; i < 9; i++ {
		h10.Observe(1)
	}
	h10.Observe(1000)
	if p90 := h10.Quantile(0.90); p90 != 1 {
		t.Fatalf("p90 of nine 1s and one 1000 = %d, want 1", p90)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(^uint64(0))
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
	if q := h.Quantile(0.01); q != 0 {
		t.Fatalf("low quantile %d, want 0", q)
	}
	if q := h.Quantile(1.0); q != ^uint64(0) {
		t.Fatalf("high quantile %d", q)
	}
}

func TestWriteTextSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("samples_total").Add(12)
	r.Gauge("queue_depth").Set(3)
	r.Histogram("batch_ns").Observe(1000)
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{"samples_total", "12", "queue_depth", "batch_ns", "count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestServeExposesExpvarJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_events").Add(5)
	addr, closeFn, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		IXPLens struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"ixplens"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar output not JSON: %v\n%s", err, body)
	}
	if vars.IXPLens.Counters["served_events"] != 5 {
		t.Fatalf("counter missing from expvar output: %s", body)
	}
	// A later Serve must swap the published registry.
	r2 := NewRegistry()
	r2.Counter("served_events").Add(9)
	addr2, closeFn2, err := Serve("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn2()
	resp2, err := http.Get("http://" + addr2 + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if err := json.Unmarshal(body2, &vars); err != nil {
		t.Fatal(err)
	}
	if vars.IXPLens.Counters["served_events"] != 9 {
		t.Fatalf("second registry not served: %s", body2)
	}
}
