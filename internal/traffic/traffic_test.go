package traffic

import (
	"bytes"
	"strings"
	"testing"

	"ixplens/internal/dnssim"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/sflow"
)

type capture struct {
	datagrams []sflow.Datagram
}

func (c *capture) sink(d *sflow.Datagram) error {
	cp := *d
	cp.Flows = make([]sflow.FlowSample, len(d.Flows))
	for i := range d.Flows {
		cp.Flows[i] = d.Flows[i]
		hdr := make([]byte, len(d.Flows[i].Raw.Header))
		copy(hdr, d.Flows[i].Raw.Header)
		cp.Flows[i].Raw.Header = hdr
	}
	cp.Counters = append([]sflow.CounterSample(nil), d.Counters...)
	c.datagrams = append(c.datagrams, cp)
	return nil
}

func genWeek(t testing.TB, week int) (*netmodel.World, *ixp.Fabric, *capture, WeekStats) {
	t.Helper()
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dns := dnssim.New(w)
	fabric := ixp.NewFabric(w)
	gen := NewGenerator(w, dns, fabric, DefaultOptions())
	cap := &capture{}
	col := ixp.NewCollector(fabric, DefaultOptions().SamplingRate, cap.sink)
	stats, err := gen.GenerateWeek(week, col)
	if err != nil {
		t.Fatal(err)
	}
	return w, fabric, cap, stats
}

func TestGenerateWeekMix(t *testing.T) {
	_, _, cap, stats := genWeek(t, 45)
	if stats.Samples < DefaultOptions().SamplesPerWeek/2 {
		t.Fatalf("only %d samples emitted", stats.Samples)
	}
	total := 0
	for i := range cap.datagrams {
		total += len(cap.datagrams[i].Flows)
	}
	if total != stats.Samples {
		t.Fatalf("collector saw %d samples, stats claim %d", total, stats.Samples)
	}
	// Mix sanity: tiny shares for the noise categories, server-related
	// dominating the peering portion.
	fr := func(n int) float64 { return float64(n) / float64(stats.Samples) }
	if fr(stats.NonIPv4) > 0.02 || fr(stats.Local) > 0.03 || fr(stats.NonTCPUDP) > 0.02 {
		t.Fatalf("noise categories too large: %+v", stats)
	}
	serverShare := float64(stats.ServerSamples) / float64(stats.PeeringSamples)
	if serverShare < 0.6 || serverShare > 0.9 {
		t.Fatalf("server-related share %.2f out of band", serverShare)
	}
	if stats.HTTPSSamples == 0 {
		t.Fatal("no HTTPS samples")
	}
	if stats.SampledServers < 100 {
		t.Fatalf("only %d distinct servers sampled", stats.SampledServers)
	}
}

func TestGenerateWeekOutsideWindow(t *testing.T) {
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(w, dnssim.New(w), ixp.NewFabric(w), DefaultOptions())
	col := ixp.NewCollector(ixp.NewFabric(w), 16384, func(*sflow.Datagram) error { return nil })
	if _, err := gen.GenerateWeek(99, col); err == nil {
		t.Fatal("week outside window must fail")
	}
}

func TestFramesDecode(t *testing.T) {
	w, fabric, cap, _ := genWeek(t, 45)
	var f packet.Frame
	decoded, ipv4, ipv6, withVLAN := 0, 0, 0, 0
	for _, d := range cap.datagrams {
		for _, fs := range d.Flows {
			if !fs.HasRaw {
				t.Fatal("flow sample without raw header")
			}
			if len(fs.Raw.Header) > 128 {
				t.Fatalf("header %d bytes exceeds snap length", len(fs.Raw.Header))
			}
			if fs.Raw.FrameLength < uint32(len(fs.Raw.Header)) {
				t.Fatal("frame length below captured bytes")
			}
			if err := packet.Decode(fs.Raw.Header, &f); err != nil {
				t.Fatalf("sampled frame undecodable: %v", err)
			}
			decoded++
			if f.IsIPv4 {
				ipv4++
			}
			if f.IsIPv6 {
				ipv6++
			}
			if f.Eth.VLAN == uint16(ixp.PeeringVLAN) {
				withVLAN++
			}
		}
	}
	if decoded == 0 || ipv4 < decoded*9/10 || ipv6 == 0 {
		t.Fatalf("decode mix wrong: %d decoded, %d v4, %d v6", decoded, ipv4, ipv6)
	}
	if withVLAN < decoded*9/10 {
		t.Fatalf("VLAN tag missing on most frames: %d of %d", withVLAN, decoded)
	}
	_ = w
	_ = fabric
}

func TestHTTPPayloadsPresent(t *testing.T) {
	_, _, cap, _ := genWeek(t, 45)
	var f packet.Frame
	reqs, resps, hosts, tls := 0, 0, 0, 0
	for _, d := range cap.datagrams {
		for _, fs := range d.Flows {
			if packet.Decode(fs.Raw.Header, &f) != nil || f.Transport != packet.TransportTCP {
				continue
			}
			p := string(f.Payload)
			if strings.HasPrefix(p, "GET ") || strings.HasPrefix(p, "POST ") || strings.HasPrefix(p, "HEAD ") {
				reqs++
				if strings.Contains(p, "Host: ") {
					hosts++
				}
			}
			if strings.HasPrefix(p, "HTTP/1.1 ") {
				resps++
			}
			if len(f.Payload) > 3 && f.Payload[0] == 0x17 && f.Payload[1] == 0x03 {
				tls++
			}
		}
	}
	if reqs == 0 || resps == 0 || tls == 0 {
		t.Fatalf("payload mix degenerate: %d reqs, %d resps, %d tls", reqs, resps, tls)
	}
	if hosts < reqs*9/10 {
		t.Fatalf("requests without Host header: %d of %d", reqs-hosts, reqs)
	}
}

func TestPortsAreMemberPorts(t *testing.T) {
	w, fabric, cap, _ := genWeek(t, 45)
	nonMember := 0
	total := 0
	for _, d := range cap.datagrams {
		for _, fs := range d.Flows {
			total++
			_, inOK := fabric.MemberOfPort(fs.InputIf)
			_, outOK := fabric.MemberOfPort(fs.OutputIf)
			if !inOK || !outOK {
				nonMember++
			}
		}
	}
	// Only the local/management category (~0.6%) may use non-member ports.
	if nonMember == 0 {
		t.Fatal("expected some local traffic on infrastructure ports")
	}
	if float64(nonMember)/float64(total) > 0.03 {
		t.Fatalf("too much non-member traffic: %d of %d", nonMember, total)
	}
	_ = w
}

func TestServerTrafficUsesGroundTruthIPs(t *testing.T) {
	w, _, cap, _ := genWeek(t, 45)
	var f packet.Frame
	serverSide := 0
	for _, d := range cap.datagrams {
		for _, fs := range d.Flows {
			if packet.Decode(fs.Raw.Header, &f) != nil || !f.IsIPv4 || f.Transport != packet.TransportTCP {
				continue
			}
			if !bytes.HasPrefix(f.Payload, []byte("HTTP/1.1")) {
				continue
			}
			// Response: source must be a known, visible, active server.
			idx, ok := w.ServerByIP(f.IPv4.Src)
			if !ok {
				t.Fatalf("response from unknown IP %v", f.IPv4.Src)
			}
			s := &w.Servers[idx]
			if !s.VisibleAtIXP() {
				t.Fatalf("response from invisible server %v", f.IPv4.Src)
			}
			if !w.ServerActiveInWeek(idx, 45) {
				t.Fatalf("response from inactive server %v", f.IPv4.Src)
			}
			serverSide++
		}
	}
	if serverSide == 0 {
		t.Fatal("no response headers found")
	}
}

func TestVolumeGrowsAcrossWeeks(t *testing.T) {
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dns := dnssim.New(w)
	fabric := ixp.NewFabric(w)
	gen := NewGenerator(w, dns, fabric, Options{SamplesPerWeek: 5000, SamplingRate: 16384, SnapLen: 128})
	drop := func(*sflow.Datagram) error { return nil }
	first, err := gen.GenerateWeek(w.Cfg.FirstWeek, ixp.NewCollector(fabric, 16384, drop))
	if err != nil {
		t.Fatal(err)
	}
	last, err := gen.GenerateWeek(w.Cfg.LastWeek(), ixp.NewCollector(fabric, 16384, drop))
	if err != nil {
		t.Fatal(err)
	}
	growth := float64(last.Samples) / float64(first.Samples)
	if growth < 1.1 || growth > 1.4 {
		t.Fatalf("volume growth %.2f, want ~14.5/11.9", growth)
	}
}

func TestHTTPSShareGrows(t *testing.T) {
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(w, dnssim.New(w), ixp.NewFabric(w), Options{SamplesPerWeek: 20000, SamplingRate: 16384, SnapLen: 128})
	drop := func(*sflow.Datagram) error { return nil }
	fabric := ixp.NewFabric(w)
	first, err := gen.GenerateWeek(w.Cfg.FirstWeek, ixp.NewCollector(fabric, 16384, drop))
	if err != nil {
		t.Fatal(err)
	}
	last, err := gen.GenerateWeek(w.Cfg.LastWeek(), ixp.NewCollector(fabric, 16384, drop))
	if err != nil {
		t.Fatal(err)
	}
	s1 := float64(first.HTTPSSamples) / float64(first.ServerSamples)
	s2 := float64(last.HTTPSSamples) / float64(last.ServerSamples)
	if s2 <= s1 {
		t.Fatalf("HTTPS share did not grow: %.3f -> %.3f", s1, s2)
	}
}

func TestGenerateAll(t *testing.T) {
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	fabric := ixp.NewFabric(w)
	gen := NewGenerator(w, dnssim.New(w), fabric, Options{SamplesPerWeek: 1000, SamplingRate: 16384, SnapLen: 128})
	drop := func(*sflow.Datagram) error { return nil }
	stats, err := gen.GenerateAll(func(int) *ixp.Collector {
		return ixp.NewCollector(fabric, 16384, drop)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != w.Cfg.Weeks {
		t.Fatalf("generated %d weeks, want %d", len(stats), w.Cfg.Weeks)
	}
	for i, st := range stats {
		if st.Week != w.Cfg.FirstWeek+i {
			t.Fatalf("week %d stats carry week %d", i, st.Week)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	_, _, cap1, st1 := genWeek(t, 40)
	_, _, cap2, st2 := genWeek(t, 40)
	if st1 != st2 {
		t.Fatalf("stats differ between identical runs:\n%+v\n%+v", st1, st2)
	}
	if len(cap1.datagrams) != len(cap2.datagrams) {
		t.Fatal("datagram counts differ")
	}
	a := cap1.datagrams[3].AppendEncode(nil)
	b := cap2.datagrams[3].AppendEncode(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("datagram bytes differ between identical runs")
	}
}

func BenchmarkGenerateWeek(b *testing.B) {
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		b.Fatal(err)
	}
	dns := dnssim.New(w)
	fabric := ixp.NewFabric(w)
	gen := NewGenerator(w, dns, fabric, Options{SamplesPerWeek: 10000, SamplingRate: 16384, SnapLen: 128})
	drop := func(*sflow.Datagram) error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := ixp.NewCollector(fabric, 16384, drop)
		if _, err := gen.GenerateWeek(45, col); err != nil {
			b.Fatal(err)
		}
	}
}
