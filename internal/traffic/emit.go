package traffic

import (
	"math/rand"

	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/randutil"
)

// emitFrame snaps and submits one rendered frame. frameLen is the
// original wire length, frame the rendered prefix (at least the headers).
func (g *Generator) emitFrame(col *ixp.Collector, ingress, egress int32, frame []byte, frameLen int) error {
	snap := frame
	if len(snap) > g.opts.SnapLen {
		snap = snap[:g.opts.SnapLen]
	}
	if frameLen < len(frame) {
		frameLen = len(frame)
	}
	return col.AddFrame(g.fabric.PortOfMember(ingress), g.fabric.PortOfMember(egress), snap, frameLen)
}

// pickClient draws a client AS and address. The client address space is
// the upper half of each prefix (the lower half belongs to servers and
// resolvers).
func (g *Generator) pickClient(rng *rand.Rand) (int32, packet.IPv4Addr) {
	as := g.clientASes[g.clientAlias.Sample(rng)]
	return as, g.clientIPIn(rng, as)
}

func (g *Generator) clientIPIn(rng *rand.Rand, as int32) packet.IPv4Addr {
	a := &g.w.ASes[as]
	pfx := &g.w.Prefixes[a.Prefixes[rng.Intn(len(a.Prefixes))]]
	size := pfx.Prefix.NumAddrs()
	half := size / 2
	pool := size - half - 5
	// Clients near the IXP are fewer but far chattier: their address
	// pool per prefix is smaller by the cube of the locality factor, so
	// the unique-IP ranking (Table 2, "All IPs": US first) decouples
	// from the traffic ranking (DE first).
	loc := localityFactor(a.Country)
	if loc > 1 {
		pool = uint64(float64(pool) / (loc * loc * loc))
		if pool < 8 {
			pool = 8
		}
	}
	off := half + 4 + uint64(rng.Int63n(int64(pool)))
	return pfx.Prefix.First() + packet.IPv4Addr(off)
}

// tcpFrame renders an Ethernet/IPv4/TCP frame between two fabric-facing
// MACs.
func (g *Generator) tcpFrame(rng *rand.Rand, ingress, egress int32,
	srcIP, dstIP packet.IPv4Addr, srcPort, dstPort uint16, payload []byte) []byte {
	eth := packet.Ethernet{
		Src:  g.fabric.MACOfMember(ingress),
		Dst:  g.fabric.MACOfMember(egress),
		VLAN: ixp.PeeringVLAN,
	}
	ip := packet.IPv4Header{
		TTL: uint8(48 + rng.Intn(17)), ID: uint16(rng.Intn(1 << 16)),
		Src: srcIP, Dst: dstIP,
	}
	tcp := packet.TCPHeader{
		SrcPort: srcPort, DstPort: dstPort,
		Seq: rng.Uint32(), Ack: rng.Uint32(),
		Flags: packet.TCPAck | packet.TCPPsh, Window: 65535,
	}
	return g.builder.BuildTCPv4(eth, ip, tcp, payload)
}

func (g *Generator) udpFrame(rng *rand.Rand, ingress, egress int32,
	srcIP, dstIP packet.IPv4Addr, srcPort, dstPort uint16, payload []byte) []byte {
	eth := packet.Ethernet{
		Src:  g.fabric.MACOfMember(ingress),
		Dst:  g.fabric.MACOfMember(egress),
		VLAN: ixp.PeeringVLAN,
	}
	ip := packet.IPv4Header{
		TTL: uint8(48 + rng.Intn(17)), ID: uint16(rng.Intn(1 << 16)),
		Src: srcIP, Dst: dstIP,
	}
	return g.builder.BuildUDPv4(eth, ip, packet.UDPHeader{SrcPort: srcPort, DstPort: dstPort}, payload)
}

// emitServerFlow produces one sampled frame of Web-server-related
// traffic: a request or response between a server and a client, or
// machine-to-machine traffic between servers.
func (g *Generator) emitServerFlow(rng *rand.Rand, isoWeek int, col *ixp.Collector,
	alias *randutil.Alias, servers []int32, sampled map[int32]bool, stats *WeekStats) error {
	si := servers[alias.Sample(rng)]
	s := &g.w.Servers[si]

	// Machine-to-machine: the server fetches from another server. The
	// paper's conclusion predicts this share keeps growing as servers
	// move closer to users; the generator encodes a mild upward trend.
	weekIdx0 := isoWeek - g.w.Cfg.FirstWeek
	m2mShare := 0.20 + 0.008*float64(weekIdx0)
	if s.Is(netmodel.SrvActsAsClient) && rng.Float64() < m2mShare {
		pi := servers[alias.Sample(rng)]
		p := &g.w.Servers[pi]
		if p.AS != s.AS {
			ingress, egress, ok := g.fabric.LinkFor(s.AS, p.AS, isoWeek)
			if !ok {
				stats.DroppedUnroutable++
				return nil
			}
			payload := g.httpRequest(rng, g.siteFor(rng, pi))
			frame := g.tcpFrame(rng, ingress, egress, s.IP, p.IP,
				ephemeralPort(rng), 80, payload)
			if err := g.emitFrame(col, ingress, egress, frame, len(frame)); err != nil {
				return err
			}
			sampled[si] = true
			sampled[pi] = true
			stats.Samples++
			stats.PeeringSamples++
			stats.ServerSamples++
			stats.M2MSamples++
			stats.ServerBytes += uint64(len(frame)) * uint64(g.opts.SamplingRate)
			stats.PeeringBytes += uint64(len(frame)) * uint64(g.opts.SamplingRate)
			return nil
		}
	}

	clientAS, clientIP := g.pickClient(rng)
	for tries := 0; clientAS == s.AS && tries < 4; tries++ {
		clientAS, clientIP = g.pickClient(rng)
	}

	// Protocol choice.
	weekIdx := isoWeek - g.w.Cfg.FirstWeek
	httpsShare := 0.24 * (1 + 0.045*float64(weekIdx))
	proto := protoHTTP
	switch {
	case s.Is(netmodel.SrvHTTPS) && rng.Float64() < httpsShare:
		proto = protoHTTPS
	case s.Is(netmodel.SrvRTMP) && rng.Float64() < 0.20:
		proto = protoRTMP
	}
	serverPort := uint16(80)
	switch proto {
	case protoHTTPS:
		serverPort = 443
	case protoRTMP:
		serverPort = 1935
	default:
		if rng.Float64() < 0.08 {
			serverPort = 8080
		}
	}

	response := rng.Float64() < 0.78
	var srcAS, dstAS int32
	var srcIP, dstIP packet.IPv4Addr
	var srcPort, dstPort uint16
	var payload []byte
	var frameLen int
	cPort := ephemeralPort(rng)

	if response {
		srcAS, dstAS = s.AS, clientAS
		srcIP, dstIP = s.IP, clientIP
		srcPort, dstPort = serverPort, cPort
		switch proto {
		case protoHTTPS:
			payload = tlsRecord(rng, g.scratch[:0], 900+rng.Intn(500))
			frameLen = 54 + len(payload) + rng.Intn(400)
		case protoRTMP:
			payload = binaryPayload(rng, g.scratch[:0], 120)
			frameLen = 1200 + rng.Intn(300)
		default:
			if rng.Float64() < 0.16 {
				payload = g.httpResponseHeader(rng, si)
			} else {
				payload = binaryPayload(rng, g.scratch[:0], 120)
			}
			frameLen = 1380 + rng.Intn(135)
		}
	} else {
		srcAS, dstAS = clientAS, s.AS
		srcIP, dstIP = clientIP, s.IP
		srcPort, dstPort = cPort, serverPort
		switch proto {
		case protoHTTPS:
			payload = tlsRecord(rng, g.scratch[:0], 80+rng.Intn(200))
			frameLen = 54 + len(payload)
		case protoRTMP:
			payload = binaryPayload(rng, g.scratch[:0], 64)
			frameLen = 54 + 64
		default:
			payload = g.httpRequest(rng, g.siteFor(rng, si))
			frameLen = 54 + len(payload)
		}
	}

	ingress, egress, ok := g.fabric.LinkFor(srcAS, dstAS, isoWeek)
	if !ok {
		stats.DroppedUnroutable++
		return nil
	}
	frame := g.tcpFrame(rng, ingress, egress, srcIP, dstIP, srcPort, dstPort, payload)
	if err := g.emitFrame(col, ingress, egress, frame, frameLen); err != nil {
		return err
	}
	sampled[si] = true
	stats.Samples++
	stats.PeeringSamples++
	stats.ServerSamples++
	if proto == protoHTTPS {
		stats.HTTPSSamples++
	}
	stats.ServerBytes += uint64(frameLen) * uint64(g.opts.SamplingRate)
	stats.PeeringBytes += uint64(frameLen) * uint64(g.opts.SamplingRate)
	return nil
}

type protoKind uint8

const (
	protoHTTP protoKind = iota
	protoHTTPS
	protoRTMP
)

// emitOtherPeering produces non-Web member-to-member traffic: P2P, DNS,
// mail, games — anything that the Web-server identification must not
// claim.
func (g *Generator) emitOtherPeering(rng *rand.Rand, isoWeek int, col *ixp.Collector, stats *WeekStats) error {
	aAS, aIP := g.pickClient(rng)
	bAS, bIP := g.pickClient(rng)
	for tries := 0; bAS == aAS && tries < 4; tries++ {
		bAS, bIP = g.pickClient(rng)
	}
	ingress, egress, ok := g.fabric.LinkFor(aAS, bAS, isoWeek)
	if !ok {
		stats.DroppedUnroutable++
		return nil
	}
	// A slice of the non-Web traffic is VPN/SSH tunneled over TCP 443
	// to endpoints that are not HTTPS web servers — the reason the
	// paper's crawl rejects most of its port-443 candidate set.
	if len(g.w.Fake443) > 0 && rng.Float64() < 0.10 {
		f := &g.w.Fake443[rng.Intn(len(g.w.Fake443))]
		if f.AS != aAS {
			if in2, out2, ok2 := g.fabric.LinkFor(aAS, f.AS, isoWeek); ok2 {
				payload := tlsRecord(rng, g.scratch[:0], 60+rng.Intn(400))
				frame := g.tcpFrame(rng, in2, out2, aIP, f.IP, ephemeralPort(rng), 443, payload)
				frameLen := 200 + rng.Intn(1200)
				if err := g.emitFrame(col, in2, out2, frame, frameLen); err != nil {
					return err
				}
				stats.Samples++
				stats.PeeringSamples++
				stats.PeeringBytes += uint64(frameLen) * uint64(g.opts.SamplingRate)
				return nil
			}
		}
	}
	var frame []byte
	var frameLen int
	if rng.Float64() < probOtherUDP {
		var sp, dp uint16
		switch rng.Intn(4) {
		case 0: // DNS
			sp, dp = ephemeralPort(rng), 53
		case 1: // QUIC-era media / games
			sp, dp = ephemeralPort(rng), uint16(27000+rng.Intn(1000))
		default: // P2P
			sp, dp = uint16(1024+rng.Intn(60000)), uint16(1024+rng.Intn(60000))
		}
		payload := binaryPayload(rng, g.scratch[:0], 90)
		frame = g.udpFrame(rng, ingress, egress, aIP, bIP, sp, dp, payload)
		// P2P data transfers dominate the UDP bytes: large frames.
		frameLen = 400 + rng.Intn(1100)
	} else {
		var dp uint16
		switch rng.Intn(5) {
		case 0:
			dp = 25 // SMTP
		case 1:
			dp = 993 // IMAPS
		case 2:
			dp = 22 // SSH
		default:
			dp = uint16(1024 + rng.Intn(60000)) // P2P over TCP
		}
		payload := binaryPayload(rng, g.scratch[:0], 100)
		frame = g.tcpFrame(rng, ingress, egress, aIP, bIP, ephemeralPort(rng), dp, payload)
		frameLen = 120 + rng.Intn(1300)
	}
	if err := g.emitFrame(col, ingress, egress, frame, frameLen); err != nil {
		return err
	}
	stats.Samples++
	stats.PeeringSamples++
	stats.PeeringBytes += uint64(frameLen) * uint64(g.opts.SamplingRate)
	return nil
}

// emitNonTCPUDP produces member-to-member IPv4 traffic that is neither
// TCP nor UDP (ICMP, GRE, ESP).
func (g *Generator) emitNonTCPUDP(rng *rand.Rand, isoWeek int, col *ixp.Collector, stats *WeekStats) error {
	aAS, aIP := g.pickClient(rng)
	bAS, bIP := g.pickClient(rng)
	ingress, egress, ok := g.fabric.LinkFor(aAS, bAS, isoWeek)
	if !ok {
		stats.DroppedUnroutable++
		return nil
	}
	eth := packet.Ethernet{
		Src:  g.fabric.MACOfMember(ingress),
		Dst:  g.fabric.MACOfMember(egress),
		VLAN: ixp.PeeringVLAN,
	}
	ip := packet.IPv4Header{TTL: 60, ID: uint16(rng.Intn(1 << 16)), Src: aIP, Dst: bIP}
	var frame []byte
	switch r := rng.Float64(); {
	case r < 0.6:
		frame = g.builder.BuildICMPv4(eth, ip, packet.ICMPHeader{Type: 8}, binaryPayload(rng, g.scratch[:0], 48))
	case r < 0.9:
		frame = g.builder.BuildIPv4Proto(eth, ip, packet.ProtoGRE, binaryPayload(rng, g.scratch[:0], 60))
	default:
		frame = g.builder.BuildIPv4Proto(eth, ip, packet.ProtoESP, binaryPayload(rng, g.scratch[:0], 60))
	}
	if err := g.emitFrame(col, ingress, egress, frame, len(frame)); err != nil {
		return err
	}
	stats.Samples++
	stats.NonTCPUDP++
	return nil
}

// emitNonIPv4 produces native IPv6 (mostly) and ARP noise.
func (g *Generator) emitNonIPv4(rng *rand.Rand, isoWeek int, col *ixp.Collector, stats *WeekStats) error {
	members := g.w.MemberASes(isoWeek)
	if len(members) < 2 {
		return nil
	}
	a := members[rng.Intn(len(members))]
	b := members[rng.Intn(len(members))]
	for tries := 0; b == a && tries < 4; tries++ {
		b = members[rng.Intn(len(members))]
	}
	eth := packet.Ethernet{
		Src:  g.fabric.MACOfMember(a),
		Dst:  g.fabric.MACOfMember(b),
		VLAN: ixp.PeeringVLAN,
	}
	var frame []byte
	if rng.Float64() < 0.85 {
		var src, dst packet.IPv6Addr
		src[0], src[1] = 0x20, 0x01
		dst[0], dst[1] = 0x20, 0x01
		rng.Read(src[8:])
		rng.Read(dst[8:])
		ip := packet.IPv6Header{HopLimit: 60, Src: src, Dst: dst}
		tcp := packet.TCPHeader{SrcPort: ephemeralPort(rng), DstPort: 80, Flags: packet.TCPAck}
		frame = g.builder.BuildTCPv6(eth, ip, tcp, binaryPayload(rng, g.scratch[:0], 64))
	} else {
		frame = g.builder.BuildARP(eth, packet.MakeIPv4(10, 99, 1, byte(rng.Intn(250))), packet.MakeIPv4(10, 99, 1, byte(rng.Intn(250))))
	}
	if err := g.emitFrame(col, a, b, frame, len(frame)); err != nil {
		return err
	}
	stats.Samples++
	stats.NonIPv4++
	return nil
}

// emitLocal produces IXP-internal traffic (management plane): it enters
// or leaves through an infrastructure port and must be filtered by the
// "member-to-member" check.
func (g *Generator) emitLocal(rng *rand.Rand, col *ixp.Collector, stats *WeekStats) error {
	eth := packet.Ethernet{
		Src:  packet.MAC{0x02, 0x49, 0x58, 0xff, 0xff, 0x01},
		Dst:  packet.MAC{0x02, 0x49, 0x58, 0xff, 0xff, 0x02},
		VLAN: ixp.PeeringVLAN,
	}
	ip := packet.IPv4Header{
		TTL: 64,
		Src: packet.MakeIPv4(10, 99, 2, byte(rng.Intn(250))),
		Dst: packet.MakeIPv4(10, 99, 2, byte(rng.Intn(250))),
	}
	frame := g.builder.BuildUDPv4(eth, ip, packet.UDPHeader{SrcPort: 161, DstPort: 162},
		binaryPayload(rng, g.scratch[:0], 60))
	snap := frame
	if len(snap) > g.opts.SnapLen {
		snap = snap[:g.opts.SnapLen]
	}
	if err := col.AddFrame(ixp.ManagementPort, ixp.ManagementPort, snap, len(frame)); err != nil {
		return err
	}
	stats.Samples++
	stats.Local++
	return nil
}

func ephemeralPort(rng *rand.Rand) uint16 {
	return uint16(32768 + rng.Intn(28000))
}
