// Package traffic generates the IXP's sampled traffic: for every weekly
// snapshot it synthesizes the mix the paper dissects in Section 2.2 —
// native IPv6 and other non-IPv4 noise, IXP-local traffic, non-TCP/UDP
// member traffic, and the member-to-member peering traffic dominated by
// Web server flows — renders each sampled frame as real Ethernet bytes,
// and pushes it through the IXP's sFlow export path.
//
// The generator plays the role of reality: the measurement pipeline
// under internal/core sees only the resulting sFlow datagrams.
package traffic

import (
	"fmt"
	"math/rand"

	"ixplens/internal/dnssim"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/randutil"
)

// Options size one generated week.
type Options struct {
	// SamplesPerWeek is the base number of sampled frames per weekly
	// snapshot (scaled up by the traffic growth trend).
	SamplesPerWeek int
	// SamplingRate is the 1-in-N rate stamped into flow samples.
	SamplingRate uint32
	// SnapLen is the header snapshot size (128 bytes at the paper's IXP).
	SnapLen int
}

// DefaultOptions returns the defaults used by tests.
func DefaultOptions() Options {
	return Options{SamplesPerWeek: 30_000, SamplingRate: 16384, SnapLen: 128}
}

// Traffic mix constants (Section 2.2.1): of all traffic, ~0.4% is
// non-IPv4, ~0.6% is local/non-member, ~0.5% of the member-to-member
// IPv4 is non-TCP/UDP; of the remaining peering traffic roughly
// three-quarters is Web-server-related, and the non-server remainder
// leans UDP (P2P and friends), producing the 82/18 TCP/UDP split.
const (
	probNonIPv4       = 0.004
	probLocal         = 0.006
	probNonTCPUDP     = 0.005
	probServerRelated = 0.74
	probOtherUDP      = 0.76
)

// WeekStats reports what the generator actually emitted for one week;
// the experiments compare the pipeline's findings against these ground
// truths.
type WeekStats struct {
	Week              int
	Samples           int
	NonIPv4           int
	Local             int
	NonTCPUDP         int
	PeeringSamples    int
	ServerSamples     int
	ServerBytes       uint64
	PeeringBytes      uint64
	HTTPSSamples      int
	M2MSamples        int // server-to-server (machine-to-machine) samples
	ActiveServers     int // distinct visible+active servers this week
	SampledServers    int // distinct servers actually hit by sampling
	DroppedUnroutable int
}

// Generator produces weekly sFlow captures from the world.
type Generator struct {
	w      *netmodel.World
	dns    *dnssim.DB
	fabric *ixp.Fabric
	opts   Options

	clientAlias *randutil.Alias
	clientASes  []int32

	builder *packet.Builder
	scratch []byte
}

// NewGenerator wires a generator to a world and its fabric.
func NewGenerator(w *netmodel.World, dns *dnssim.DB, fabric *ixp.Fabric, opts Options) *Generator {
	g := &Generator{
		w: w, dns: dns, fabric: fabric, opts: opts,
		builder: packet.NewBuilder(2048),
		scratch: make([]byte, 0, 1600),
	}
	var weights []float64
	for i := range w.ASes {
		if cw := w.ASes[i].ClientWeight; cw > 0 {
			g.clientASes = append(g.clientASes, int32(i))
			weights = append(weights, cw*localityFactor(w.ASes[i].Country))
		}
	}
	g.clientAlias = randutil.NewAlias(weights)
	return g
}

// localityFactor boosts traffic of clients near the (German) IXP.
func localityFactor(country string) float64 {
	switch country {
	case "DE":
		return 5.0
	case "FR", "GB", "NL", "IT", "ES", "PL", "CZ", "AT", "CH", "SE", "DK",
		"NO", "FI", "BE", "PT", "GR", "HU", "RO", "IE", "EU", "UA", "TR", "RU":
		return 2.2
	default:
		return 0.6
	}
}

// weekServerAlias builds the week's server-selection table over servers
// that are visible at the IXP and active that week. The weight combines
// org popularity, the server's share, and the HTTPS adoption trend.
func (g *Generator) weekServerAlias(isoWeek int) (*randutil.Alias, []int32) {
	w := g.w
	weekIdx := isoWeek - w.Cfg.FirstWeek
	httpsGrowth := 1 + 0.05*float64(weekIdx)
	var idx []int32
	var raw []float64
	orgSum := make(map[int32]float64)
	for i := range w.Servers {
		s := &w.Servers[i]
		if !s.VisibleAtIXP() || !w.ServerActiveInWeek(int32(i), isoWeek) {
			continue
		}
		wt := float64(s.Weight)
		if wt <= 0 || w.Orgs[s.Org].Weight <= 0 {
			continue
		}
		if s.Is(netmodel.SrvHTTPS) {
			wt *= 0.85 + 0.15*httpsGrowth
		}
		// CDN-deploy servers inside the org's own AS carry most of the
		// org's traffic (Fig. 7b: only 11.1% of Akamai traffic enters
		// via non-Akamai links despite most servers being off-AS).
		if w.Orgs[s.Org].Kind == netmodel.OrgCDNDeploy && s.AS == w.Orgs[s.Org].HomeAS {
			wt *= 25
		}
		idx = append(idx, int32(i))
		raw = append(raw, wt)
		orgSum[s.Org] += wt
	}
	if len(idx) == 0 {
		return nil, nil
	}
	// Renormalize per organization so the within-org boosts (HTTPS
	// growth, own-AS concentration) redistribute demand inside the org
	// without inflating the org's share of total traffic.
	weights := make([]float64, len(idx))
	for k, si := range idx {
		org := w.Servers[si].Org
		weights[k] = w.Orgs[org].Weight * raw[k] / orgSum[org]
	}
	return randutil.NewAlias(weights), idx
}

// volumeFactor scales the weekly sample count along the paper's traffic
// growth (11.9 PB/day in week 35 to 14.5 PB/day in week 51).
func (g *Generator) volumeFactor(isoWeek int) float64 {
	cfg := &g.w.Cfg
	if cfg.Weeks <= 1 {
		return 1
	}
	frac := float64(isoWeek-cfg.FirstWeek) / float64(cfg.Weeks-1)
	return 1 + frac*(cfg.AvgDailyTrafficPBEnd/cfg.AvgDailyTrafficPBStart-1)
}

// GenerateWeek renders one weekly snapshot into the collector. The
// returned stats are generator-side ground truth.
func (g *Generator) GenerateWeek(isoWeek int, col *ixp.Collector) (WeekStats, error) {
	w := g.w
	if isoWeek < w.Cfg.FirstWeek || isoWeek > w.Cfg.LastWeek() {
		return WeekStats{}, fmt.Errorf("traffic: week %d outside study window %d..%d",
			isoWeek, w.Cfg.FirstWeek, w.Cfg.LastWeek())
	}
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ int64(isoWeek)*0x9e37))
	alias, servers := g.weekServerAlias(isoWeek)
	if alias == nil {
		return WeekStats{}, fmt.Errorf("traffic: no active visible servers in week %d", isoWeek)
	}
	stats := WeekStats{Week: isoWeek, ActiveServers: len(servers)}
	sampled := make(map[int32]bool)

	n := int(float64(g.opts.SamplesPerWeek) * g.volumeFactor(isoWeek))
	for k := 0; k < n; k++ {
		r := rng.Float64()
		var err error
		switch {
		case r < probNonIPv4:
			err = g.emitNonIPv4(rng, isoWeek, col, &stats)
		case r < probNonIPv4+probLocal:
			err = g.emitLocal(rng, col, &stats)
		case r < probNonIPv4+probLocal+probNonTCPUDP:
			err = g.emitNonTCPUDP(rng, isoWeek, col, &stats)
		default:
			if rng.Float64() < probServerRelated {
				err = g.emitServerFlow(rng, isoWeek, col, alias, servers, sampled, &stats)
			} else {
				err = g.emitOtherPeering(rng, isoWeek, col, &stats)
			}
		}
		if err != nil {
			return stats, err
		}
	}
	// Periodic interface counters for every port that saw traffic,
	// accumulated by the collector exactly as a switch would.
	if err := col.EmitPortCounters(); err != nil {
		return stats, err
	}
	stats.SampledServers = len(sampled)
	return stats, col.Flush()
}

// GenerateAll renders every week of the study into per-week collectors
// created by mkCollector. Convenience for cmd/ixpgen and tests.
func (g *Generator) GenerateAll(mkCollector func(isoWeek int) *ixp.Collector) ([]WeekStats, error) {
	cfg := &g.w.Cfg
	out := make([]WeekStats, 0, cfg.Weeks)
	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		col := mkCollector(wk)
		st, err := g.GenerateWeek(wk, col)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}
