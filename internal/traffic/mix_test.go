package traffic

import (
	"testing"

	"ixplens/internal/dnssim"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/sflow"
)

// mixWeek captures one week and returns every decoded peering frame.
func mixWeek(t testing.TB, week int) (*netmodel.World, []packet.Frame) {
	t.Helper()
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	fabric := ixp.NewFabric(w)
	gen := NewGenerator(w, dnssim.New(w), fabric, DefaultOptions())
	var frames []packet.Frame
	col := ixp.NewCollector(fabric, 16384, func(d *sflow.Datagram) error {
		for i := range d.Flows {
			var f packet.Frame
			if packet.Decode(d.Flows[i].Raw.Header, &f) == nil {
				// Copy the payload out of the reused buffer.
				f.Payload = append([]byte(nil), f.Payload...)
				frames = append(frames, f)
			}
		}
		return nil
	})
	if _, err := gen.GenerateWeek(week, col); err != nil {
		t.Fatal(err)
	}
	return w, frames
}

func TestMixDetails(t *testing.T) {
	w, frames := mixWeek(t, 45)
	var rtmp, port8080, dns53, fake443, https443 int
	for i := range frames {
		f := &frames[i]
		if f.Transport == packet.TransportTCP {
			switch {
			case f.SrcPort() == 1935 || f.DstPort() == 1935:
				rtmp++
			case f.SrcPort() == 8080 || f.DstPort() == 8080:
				port8080++
			case f.SrcPort() == 443:
				// HTTPS responses come from the server side.
				https443++
			case f.DstPort() == 443:
				// Split genuine HTTPS requests from tunneled fake-443.
				if idx, ok := w.ServerByIP(f.IPv4.Dst); ok && w.Servers[idx].Is(netmodel.SrvHTTPS) {
					https443++
				} else {
					fake443++
				}
			}
		}
		if f.Transport == packet.TransportUDP && f.DstPort() == 53 {
			dns53++
		}
	}
	if rtmp == 0 {
		t.Error("no RTMP (1935) traffic — multi-purpose servers impossible")
	}
	if port8080 == 0 {
		t.Error("no port-8080 HTTP traffic")
	}
	if dns53 == 0 {
		t.Error("no DNS traffic in the non-Web mix")
	}
	if https443 == 0 {
		t.Error("no genuine HTTPS traffic")
	}
	if fake443 == 0 {
		t.Error("no tunneled fake-443 traffic — the crawl funnel cannot reject anything")
	}
	if fake443 >= https443 {
		t.Errorf("fake-443 (%d) should be rarer than genuine HTTPS (%d)", fake443, https443)
	}
}

func TestJunkHostHeadersEmitted(t *testing.T) {
	_, frames := mixWeek(t, 45)
	junk := 0
	requests := 0
	for i := range frames {
		p := string(frames[i].Payload)
		if len(p) > 4 && (p[:4] == "GET " || p[:5] == "POST " || p[:5] == "HEAD ") {
			requests++
			if contains(p, "Host: localhost\r") || contains(p, "bad host header") {
				junk++
			}
		}
	}
	if requests == 0 {
		t.Fatal("no requests decoded")
	}
	if junk == 0 {
		t.Error("no junk Host headers — cleaning never exercised")
	}
	if junk > requests/20 {
		t.Errorf("junk hosts too common: %d of %d", junk, requests)
	}
}

func TestM2MShareGrowsInGroundTruth(t *testing.T) {
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	fabric := ixp.NewFabric(w)
	gen := NewGenerator(w, dnssim.New(w), fabric, Options{SamplesPerWeek: 20_000, SamplingRate: 16384, SnapLen: 128})
	drop := func(*sflow.Datagram) error { return nil }
	first, err := gen.GenerateWeek(w.Cfg.FirstWeek, ixp.NewCollector(fabric, 16384, drop))
	if err != nil {
		t.Fatal(err)
	}
	last, err := gen.GenerateWeek(w.Cfg.LastWeek(), ixp.NewCollector(fabric, 16384, drop))
	if err != nil {
		t.Fatal(err)
	}
	s1 := float64(first.M2MSamples) / float64(first.ServerSamples)
	s2 := float64(last.M2MSamples) / float64(last.ServerSamples)
	if s2 <= s1 {
		t.Fatalf("m2m share did not grow: %.4f -> %.4f", s1, s2)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
