package traffic

import (
	"fmt"
	"math/rand"
	"strconv"

	"ixplens/internal/netmodel"
)

// HTTP method mix for requests; GET dominates.
var httpMethods = []string{"GET", "GET", "GET", "GET", "GET", "GET", "POST", "POST", "HEAD"}

// serverBanners by org kind: what the Server: response header claims.
var serverBanners = []string{"nginx/1.2.1", "Apache/2.2.22 (Debian)", "ATS/3.2.0", "lighttpd/1.4.31", "IIS/7.5", "AkamaiGHost"}

var contentTypes = []string{"text/html; charset=UTF-8", "image/jpeg", "application/json", "video/mp4", "application/octet-stream", "text/css"}

var userAgents = []string{
	"Mozilla/5.0 (Windows NT 6.1; rv:17.0) Gecko/17.0 Firefox/17.0",
	"Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537.11 Chrome/23.0",
	"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_8_2) Safari/536.26",
	"Opera/9.80 (Windows NT 6.1)",
}

// siteFor picks the site whose content a sampled exchange with this
// server carries: normally one of the owning org's sites (popularity
// skewed); for deploy-CDNs a share of requests carries third-party
// customer domains, exactly the Akamai situation the paper's traffic
// attribution discussion builds on.
func (g *Generator) siteFor(rng *rand.Rand, serverIdx int32) string {
	s := &g.w.Servers[serverIdx]
	o := &g.w.Orgs[s.Org]
	if (o.Kind == netmodel.OrgCDNDeploy || o.Kind == netmodel.OrgCDNCentral) && rng.Float64() < 0.30 {
		// CDN edges answer for their customers' domains: pick a popular
		// third-party site served by this CDN when one exists, falling
		// back to any popular site.
		all := g.dns.Sites()
		span := len(all)
		if span > 2000 {
			span = 2000
		}
		for tries := 0; tries < 4; tries++ {
			u := rng.Float64()
			site := &all[int(u*u*u*float64(span))]
			if site.ServedBy == s.Org {
				return site.Domain
			}
		}
		u := rng.Float64()
		return all[int(u*u*u*float64(span))].Domain
	}
	sites := g.dns.SitesOfOrg(s.Org)
	if len(sites) == 0 {
		return o.Domain
	}
	u := rng.Float64()
	return g.dns.Site(sites[int(u*u*float64(len(sites)))]).Domain
}

// httpRequest renders a plausible HTTP/1.1 request head into the
// generator's scratch buffer (the frame builder copies it out). Every
// request carries a Host header; that is the URI evidence the meta-data
// collection of Section 2.4 harvests.
func (g *Generator) httpRequest(rng *rand.Rand, host string) []byte {
	// A small share of requests carries junk Host values (bots, IP
	// literal scans, broken clients); the meta-data cleaning step must
	// strip these.
	if rng.Float64() < 0.015 {
		switch rng.Intn(3) {
		case 0:
			host = fmt.Sprintf("%d.%d.%d.%d", rng.Intn(224), rng.Intn(256), rng.Intn(256), rng.Intn(256))
		case 1:
			host = "localhost"
		default:
			host = "bad host header.com"
		}
	}
	b := g.scratch[:0]
	b = append(b, httpMethods[rng.Intn(len(httpMethods))]...)
	b = append(b, ' ')
	b = appendRequestPath(b, rng)
	b = append(b, " HTTP/1.1\r\nHost: "...)
	b = append(b, host...)
	b = append(b, "\r\nUser-Agent: "...)
	b = append(b, userAgents[rng.Intn(len(userAgents))]...)
	b = append(b, "\r\nAccept: */*\r\nConnection: keep-alive\r\n\r\n"...)
	g.scratch = b[:0]
	return b
}

func appendRequestPath(b []byte, rng *rand.Rand) []byte {
	switch rng.Intn(4) {
	case 0:
		return append(b, '/')
	case 1:
		b = append(b, "/assets/img/"...)
		b = strconv.AppendInt(b, int64(rng.Intn(100000)), 10)
		return append(b, ".jpg"...)
	case 2:
		b = append(b, "/v/"...)
		b = strconv.AppendInt(b, int64(rng.Intn(100)), 10)
		b = append(b, '/')
		b = strconv.AppendInt(b, int64(rng.Intn(1000)), 10)
		b = append(b, "/chunk"...)
		b = strconv.AppendInt(b, int64(rng.Intn(500)), 10)
		return append(b, ".ts"...)
	default:
		b = append(b, "/index.php?id="...)
		return strconv.AppendInt(b, int64(rng.Intn(100000)), 10)
	}
}

// httpResponseHeader renders the head of an HTTP response; the status
// line and header words are what the string-matching identification of
// Section 2.2.2 keys on.
func (g *Generator) httpResponseHeader(rng *rand.Rand, serverIdx int32) []byte {
	status := "200 OK"
	switch rng.Intn(12) {
	case 0:
		status = "304 Not Modified"
	case 1:
		status = "404 Not Found"
	case 2:
		status = "302 Found"
	}
	banner := serverBanners[int(uint32(serverIdx))%len(serverBanners)]
	ct := contentTypes[rng.Intn(len(contentTypes))]
	head := fmt.Sprintf("HTTP/1.1 %s\r\nServer: %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nCache-Control: max-age=%d\r\n\r\n",
		status, banner, ct, rng.Intn(5_000_000), rng.Intn(86400))
	return []byte(head)
}

// binaryPayload fills buf with n pseudo-random bytes that cannot be
// mistaken for HTTP text (the high bit is set on every byte). One RNG
// draw yields eight bytes; this is the hottest path of the generator.
func binaryPayload(rng *rand.Rand, buf []byte, n int) []byte {
	for i := 0; i < n; i += 8 {
		v := rng.Uint64()
		for k := 0; k < 8 && i+k < n; k++ {
			buf = append(buf, byte(v)|0x80)
			v >>= 8
		}
	}
	return buf
}

// tlsRecord renders the start of a TLS application-data record: content
// type 23, version 3.3, then opaque ciphertext. String matching finds
// nothing here, which is why the paper needs active HTTPS crawls.
func tlsRecord(rng *rand.Rand, buf []byte, n int) []byte {
	buf = append(buf, 0x17, 0x03, 0x03, byte(n>>8), byte(n))
	return binaryPayload(rng, buf, n)
}
