// Package ixp models the measured IXP's public peering fabric: member
// ports on edge switches, the peering relationships established across
// the fabric, and the sFlow export path (sampling collector that batches
// flow samples into per-agent datagrams).
//
// The traffic generator drives this fabric; the analysis pipeline sees
// only the sFlow datagrams that leave it, exactly like the paper's
// vantage point.
package ixp

import (
	"sort"

	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/randutil"
	"ixplens/internal/sflow"
)

// Port numbering: member ports start at firstMemberPort; lower ifIndex
// values are infrastructure (management, route servers).
const (
	// ManagementPort carries IXP-internal traffic.
	ManagementPort  uint32 = 1
	firstMemberPort uint32 = 1000
	// PeeringVLAN is the VLAN of the public peering LAN.
	PeeringVLAN uint16 = 600
)

// Fabric is the switching fabric of the IXP.
type Fabric struct {
	w *netmodel.World
	// numAgents is the number of edge switches exporting sFlow.
	numAgents int
	// peerProb is the probability that two members peer directly over
	// the public fabric (most, but not all, member pairs do).
	peerProb float64
	// transitMembers are members with a transit role: traffic between
	// non-peering members is relayed through one of them.
	transitMembers []int32
}

// NewFabric builds the fabric for a world.
func NewFabric(w *netmodel.World) *Fabric {
	f := &Fabric{w: w, numAgents: 8, peerProb: 0.96}
	for i := range w.ASes {
		a := &w.ASes[i]
		if a.MemberWeek != 0 && (a.Role == netmodel.RoleTransit || a.Role == netmodel.RoleReseller) {
			f.transitMembers = append(f.transitMembers, int32(i))
		}
	}
	if len(f.transitMembers) == 0 {
		// Degenerate worlds still need a relay; use the first member.
		f.transitMembers = append(f.transitMembers, 0)
	}
	return f
}

// PortOfMember returns the ifIndex of a member's port. Ports exist for
// all eventual members; whether the member is active in a given week is
// the caller's concern.
func (f *Fabric) PortOfMember(asIdx int32) uint32 {
	return firstMemberPort + uint32(asIdx)
}

// MemberOfPort inverts PortOfMember. ok is false for infrastructure
// ports and out-of-range values.
func (f *Fabric) MemberOfPort(port uint32) (int32, bool) {
	if port < firstMemberPort {
		return 0, false
	}
	idx := int32(port - firstMemberPort)
	if int(idx) >= len(f.w.ASes) || f.w.ASes[idx].MemberWeek == 0 {
		return 0, false
	}
	return idx, true
}

// MACOfMember returns the member router's MAC address on the peering
// LAN. The locally-administered OUI 02:49:58 ("IXP") plus the AS index
// makes MACs stable and collision-free.
func (f *Fabric) MACOfMember(asIdx int32) packet.MAC {
	return packet.MAC{0x02, 0x49, 0x58, byte(asIdx >> 16), byte(asIdx >> 8), byte(asIdx)}
}

// Peers reports whether two members exchange routes directly over the
// public fabric. It is symmetric and deterministic.
func (f *Fabric) Peers(a, b int32) bool {
	if a == b {
		return true
	}
	if a > b {
		a, b = b, a
	}
	return randutil.HashUnit(uint64(f.w.Cfg.Seed), 0x9ee5, uint64(a), uint64(b)) < f.peerProb
}

// RelayMember returns the transit member that carries traffic between
// two members that do not peer directly.
func (f *Fabric) RelayMember(a, b int32) int32 {
	h := randutil.Hash64(uint64(f.w.Cfg.Seed), 0x4e1a, uint64(a), uint64(b))
	return f.transitMembers[int(h%uint64(len(f.transitMembers)))]
}

// IngressMember resolves which member port traffic from an AS enters
// through in a given week: the AS itself when it is a member, otherwise
// its designated upstream member. It returns -1 when the AS has no path
// onto the fabric that week.
func (f *Fabric) IngressMember(asIdx int32, isoWeek int) int32 {
	a := &f.w.ASes[asIdx]
	if a.IsMemberInWeek(isoWeek) {
		return asIdx
	}
	if via := a.ViaMember; via >= 0 && via != asIdx && f.w.ASes[via].IsMemberInWeek(isoWeek) {
		return via
	}
	if up := a.Upstream; up >= 0 && f.w.ASes[up].IsMemberInWeek(isoWeek) {
		return up
	}
	return -1
}

// LinkFor determines the (ingress, egress) member ports for a frame from
// srcAS to dstAS during isoWeek, honouring the peering matrix: if the
// two edge members do not peer directly, the frame takes two fabric
// hops via a transit member, and the sampled hop is the one facing the
// destination (transit → egress). ok is false when the traffic cannot
// cross the public fabric at all.
func (f *Fabric) LinkFor(srcAS, dstAS int32, isoWeek int) (ingress, egress int32, ok bool) {
	in := f.IngressMember(srcAS, isoWeek)
	out := f.IngressMember(dstAS, isoWeek)
	if in < 0 || out < 0 || in == out {
		return 0, 0, false
	}
	if !f.Peers(in, out) {
		relay := f.RelayMember(in, out)
		if relay == in || relay == out {
			return in, out, true
		}
		return relay, out, true
	}
	return in, out, true
}

// Collector batches flow samples into sFlow datagrams, one exporter per
// edge switch, and hands full datagrams to a sink. Sequence numbers and
// sample pools evolve like a real agent's.
type Collector struct {
	fabric  *Fabric
	sink    func(*sflow.Datagram) error
	pending []sflow.Datagram
	// samplesPerDatagram controls batching (UDP MTU limits real agents
	// to a handful of 128-byte samples per datagram).
	samplesPerDatagram int
	seq                []uint32
	sampleSeq          []uint32
	pool               []uint32
	uptime             uint32
	rate               uint32

	// reuse switches the collector to buffer-reuse mode: header bytes
	// live in per-agent arenas and the Flows/Counters slices are recycled
	// after every flush, so a steady-state capture allocates nothing per
	// frame. See SetBufferReuse for the sink contract this changes.
	reuse  bool
	arenas [][]byte

	// Per-port traffic accounting, scaled up by the sampling rate —
	// what a real switch's interface counters would show (modulo
	// sampling error). Keys are ifIndex values.
	inOctets  map[uint32]uint64
	outOctets map[uint32]uint64
	inPkts    map[uint32]uint32
	outPkts   map[uint32]uint32

	m *CollectorMetrics
}

// NewCollector builds a collector exporting at the given sampling rate.
func NewCollector(f *Fabric, rate uint32, sink func(*sflow.Datagram) error) *Collector {
	c := &Collector{
		fabric: f, sink: sink, samplesPerDatagram: 6, rate: rate,
		seq:       make([]uint32, f.numAgents),
		sampleSeq: make([]uint32, f.numAgents),
		pool:      make([]uint32, f.numAgents),
		inOctets:  make(map[uint32]uint64),
		outOctets: make(map[uint32]uint64),
		inPkts:    make(map[uint32]uint32),
		outPkts:   make(map[uint32]uint32),
	}
	c.pending = make([]sflow.Datagram, f.numAgents)
	for i := range c.pending {
		c.pending[i].AgentAddr = [4]byte{10, 99, 0, byte(i + 1)}
		c.pending[i].SubAgentID = uint32(i)
	}
	return c
}

// SetBufferReuse toggles buffer-reuse mode. Off (the default), every
// flushed datagram owns freshly allocated Flows and Raw.Header backing
// arrays, so a sink may retain them indefinitely — that is what the
// buffered SliceSource capture relies on. On, the collector recycles
// those buffers across flushes: the datagram passed to the sink (and
// everything it points to) is valid only for the duration of the sink
// call, and the sink must copy whatever it keeps. Streaming consumers
// (dissect.StreamProcessor.Add, encoders that serialize immediately)
// honour that contract and gain an allocation-free steady state.
// Toggle only between flushes, before the affected frames are added.
func (c *Collector) SetBufferReuse(on bool) {
	c.reuse = on
	if on && c.arenas == nil {
		c.arenas = make([][]byte, len(c.pending))
	}
}

// SetMetrics attaches an observability bundle (nil disables). Collector
// is single-goroutine, so this may be called at any point between
// flushes.
func (c *Collector) SetMetrics(m *CollectorMetrics) { c.m = m }

// agentOfPort spreads member ports across the edge switches.
func (c *Collector) agentOfPort(port uint32) int {
	return int(port) % c.fabric.numAgents
}

// AddFrame records one sampled frame entering through inPort and leaving
// through outPort. header is the snapped frame prefix; frameLen the
// original length on the wire.
func (c *Collector) AddFrame(inPort, outPort uint32, header []byte, frameLen int) error {
	agent := c.agentOfPort(inPort)
	c.sampleSeq[agent]++
	c.pool[agent] += c.rate
	var hdr []byte
	if c.reuse {
		arena := c.arenas[agent]
		off := len(arena)
		arena = append(arena, header...)
		c.arenas[agent] = arena
		hdr = arena[off:len(arena):len(arena)]
	} else {
		hdr = make([]byte, len(header))
		copy(hdr, header)
	}
	fs := sflow.FlowSample{
		SequenceNum:   c.sampleSeq[agent],
		SourceIDIndex: inPort & 0xffffff,
		SamplingRate:  c.rate,
		SamplePool:    c.pool[agent],
		InputIf:       inPort,
		OutputIf:      outPort,
		HasRaw:        true,
		Raw: sflow.RawPacketHeader{
			Protocol:    sflow.HeaderProtoEthernet,
			FrameLength: uint32(frameLen),
			Header:      hdr,
		},
		HasSwitch: true,
		Switch: sflow.ExtendedSwitch{
			SrcVLAN: uint32(PeeringVLAN), DstVLAN: uint32(PeeringVLAN),
		},
	}
	d := &c.pending[agent]
	d.Flows = append(d.Flows, fs)
	if c.m != nil {
		c.m.Samples.Inc()
	}
	c.uptime += 7 // arbitrary monotone clock
	scaled := uint64(frameLen) * uint64(c.rate)
	c.inOctets[inPort] += scaled
	c.outOctets[outPort] += scaled
	c.inPkts[inPort] += c.rate
	c.outPkts[outPort] += c.rate
	if len(d.Flows) >= c.samplesPerDatagram {
		return c.flushAgent(agent)
	}
	return nil
}

// PortCounters returns the interface counters accumulated for a port,
// as a real agent would report them in a generic counters record.
func (c *Collector) PortCounters(port uint32) sflow.GenericInterfaceCounters {
	return sflow.GenericInterfaceCounters{
		IfIndex: port, IfType: 6, IfSpeed: 10_000_000_000,
		IfDirection: 1, IfStatus: 3,
		InOctets: c.inOctets[port], OutOctets: c.outOctets[port],
		InUcastPkts: c.inPkts[port], OutUcastPkts: c.outPkts[port],
	}
}

// EmitPortCounters sends a counter sample for every port that saw
// traffic, like an agent's periodic counter export. Ports are emitted
// in ascending order: map iteration order would otherwise vary the
// datagram stream run to run, breaking the determinism that replay and
// fault injection (both keyed on datagram index) rely on.
func (c *Collector) EmitPortCounters() error {
	ports := make([]uint32, 0, len(c.inOctets))
	for port := range c.inOctets {
		ports = append(ports, port)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	for _, port := range ports {
		if err := c.AddCounters(port, c.PortCounters(port)); err != nil {
			return err
		}
	}
	return nil
}

// AddCounters emits a generic interface counter sample for a port.
func (c *Collector) AddCounters(port uint32, g sflow.GenericInterfaceCounters) error {
	agent := c.agentOfPort(port)
	d := &c.pending[agent]
	d.Counters = append(d.Counters, sflow.CounterSample{
		SequenceNum:   c.sampleSeq[agent],
		SourceIDIndex: port & 0xffffff,
		HasGeneric:    true,
		Generic:       g,
	})
	if c.m != nil {
		c.m.CounterSamples.Inc()
	}
	if len(d.Counters) >= c.samplesPerDatagram {
		return c.flushAgent(agent)
	}
	return nil
}

func (c *Collector) flushAgent(agent int) error {
	d := &c.pending[agent]
	if len(d.Flows) == 0 && len(d.Counters) == 0 {
		return nil
	}
	c.seq[agent]++
	d.SequenceNum = c.seq[agent]
	d.Uptime = c.uptime
	err := c.sink(d)
	if c.m != nil {
		c.m.Flushes.Inc()
		if c.reuse {
			c.m.BufferReuses.Inc()
		}
	}
	if c.reuse {
		d.Flows = d.Flows[:0]
		d.Counters = d.Counters[:0]
		c.arenas[agent] = c.arenas[agent][:0]
	} else {
		d.Flows = nil
		d.Counters = nil
	}
	return err
}

// Flush drains all partially filled datagrams to the sink.
func (c *Collector) Flush() error {
	for agent := range c.pending {
		if err := c.flushAgent(agent); err != nil {
			return err
		}
	}
	return nil
}
