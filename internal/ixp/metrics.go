package ixp

import "ixplens/internal/obs"

// CollectorMetrics is the sFlow export path's observability bundle. A
// nil *CollectorMetrics disables instrumentation; the collector gates
// every update on the pointer so the disabled cost is one branch.
type CollectorMetrics struct {
	// Samples counts flow samples exported; CounterSamples counts
	// interface counter samples.
	Samples        *obs.Counter
	CounterSamples *obs.Counter
	// Flushes counts datagrams handed to the sink; BufferReuses counts
	// the flushes whose backing arrays were recycled (buffer-reuse mode)
	// rather than freshly allocated.
	Flushes      *obs.Counter
	BufferReuses *obs.Counter
}

// NewCollectorMetrics builds the bundle against a registry; nil in,
// nil out.
func NewCollectorMetrics(r *obs.Registry) *CollectorMetrics {
	if r == nil {
		return nil
	}
	return &CollectorMetrics{
		Samples:        r.Counter("ixp_samples_total"),
		CounterSamples: r.Counter("ixp_counter_samples_total"),
		Flushes:        r.Counter("ixp_flushes_total"),
		BufferReuses:   r.Counter("ixp_buffer_reuses_total"),
	}
}
