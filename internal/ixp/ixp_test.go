package ixp

import (
	"fmt"
	"testing"

	"ixplens/internal/netmodel"
	"ixplens/internal/sflow"
)

func testFabric(t testing.TB) (*netmodel.World, *Fabric) {
	t.Helper()
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return w, NewFabric(w)
}

func TestPortMapping(t *testing.T) {
	w, f := testFabric(t)
	for i := range w.ASes {
		if w.ASes[i].MemberWeek == 0 {
			continue
		}
		port := f.PortOfMember(int32(i))
		back, ok := f.MemberOfPort(port)
		if !ok || back != int32(i) {
			t.Fatalf("port round trip failed for member %d", i)
		}
	}
	if _, ok := f.MemberOfPort(ManagementPort); ok {
		t.Fatal("management port must not be a member port")
	}
	if _, ok := f.MemberOfPort(firstMemberPort + uint32(len(w.ASes))); ok {
		t.Fatal("out-of-range port must not resolve")
	}
	// A non-member AS's port must not resolve either.
	for i := range w.ASes {
		if w.ASes[i].MemberWeek == 0 {
			if _, ok := f.MemberOfPort(f.PortOfMember(int32(i))); ok {
				t.Fatal("non-member port resolved")
			}
			break
		}
	}
}

func TestMACsDistinct(t *testing.T) {
	_, f := testFabric(t)
	seen := map[string]bool{}
	for i := int32(0); i < 100; i++ {
		m := f.MACOfMember(i).String()
		if seen[m] {
			t.Fatalf("duplicate MAC %s", m)
		}
		seen[m] = true
	}
}

func TestPeersSymmetricDeterministic(t *testing.T) {
	_, f := testFabric(t)
	peered, unpeered := 0, 0
	for a := int32(0); a < 40; a++ {
		for b := a + 1; b < 40; b++ {
			p1 := f.Peers(a, b)
			p2 := f.Peers(b, a)
			if p1 != p2 {
				t.Fatal("Peers not symmetric")
			}
			if p1 {
				peered++
			} else {
				unpeered++
			}
		}
	}
	if unpeered == 0 || peered == 0 {
		t.Fatalf("peering matrix degenerate: %d/%d", peered, unpeered)
	}
	if !f.Peers(3, 3) {
		t.Fatal("self peering must hold")
	}
}

func TestIngressMember(t *testing.T) {
	w, f := testFabric(t)
	week := w.Cfg.FirstWeek
	for i := range w.ASes {
		a := &w.ASes[i]
		in := f.IngressMember(int32(i), week)
		if a.IsMemberInWeek(week) {
			if in != int32(i) {
				t.Fatalf("member %d ingress = %d", i, in)
			}
			continue
		}
		if in >= 0 && !w.ASes[in].IsMemberInWeek(week) {
			t.Fatalf("AS %d ingress %d is not a member in week %d", i, in, week)
		}
	}
}

func TestLateJoinerReachableBeforeJoin(t *testing.T) {
	w, f := testFabric(t)
	for i := range w.ASes {
		a := &w.ASes[i]
		if a.MemberWeek <= w.Cfg.FirstWeek {
			continue
		}
		in := f.IngressMember(int32(i), w.Cfg.FirstWeek)
		if in == int32(i) {
			t.Fatalf("late joiner %d ingress via itself before joining", i)
		}
		in = f.IngressMember(int32(i), a.MemberWeek)
		if in != int32(i) {
			t.Fatalf("joined member %d not its own ingress", i)
		}
		return
	}
	t.Skip("no late joiners")
}

func TestLinkFor(t *testing.T) {
	w, f := testFabric(t)
	week := w.Cfg.FirstWeek
	// Same AS on both sides: never crosses the fabric.
	if _, _, ok := f.LinkFor(3, 3, week); ok {
		t.Fatal("intra-AS traffic must not cross the fabric")
	}
	found := false
	for a := int32(0); a < int32(w.Cfg.MembersStart) && !found; a++ {
		for b := a + 1; b < int32(w.Cfg.MembersStart); b++ {
			in, out, ok := f.LinkFor(a, b, week)
			if !ok {
				continue
			}
			if out != b {
				t.Fatalf("egress %d, want %d", out, b)
			}
			if !f.Peers(a, b) && in == a && f.RelayMember(a, b) != a && f.RelayMember(a, b) != b {
				t.Fatal("non-peering pair must be relayed")
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no valid member pair link")
	}
}

func TestCollectorBatching(t *testing.T) {
	_, f := testFabric(t)
	var got []sflow.Datagram
	col := NewCollector(f, 16384, func(d *sflow.Datagram) error {
		cp := *d
		cp.Flows = append([]sflow.FlowSample(nil), d.Flows...)
		got = append(got, cp)
		return nil
	})
	header := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	const n = 50
	for i := 0; i < n; i++ {
		// All frames on one port so they share an agent.
		if err := col.AddFrame(f.PortOfMember(8), f.PortOfMember(9), header, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range got {
		total += len(d.Flows)
		if len(d.Flows) > 6 {
			t.Fatalf("datagram with %d flows exceeds batch size", len(d.Flows))
		}
	}
	if total != n {
		t.Fatalf("collected %d samples, want %d", total, n)
	}
	// Sequence numbers per flow sample must be monotone.
	last := uint32(0)
	for _, d := range got {
		for _, fs := range d.Flows {
			if fs.SequenceNum <= last {
				t.Fatalf("sample sequence not monotone: %d after %d", fs.SequenceNum, last)
			}
			last = fs.SequenceNum
			if fs.SamplingRate != 16384 {
				t.Fatal("sampling rate not stamped")
			}
			if fs.InputIf != f.PortOfMember(8) || fs.OutputIf != f.PortOfMember(9) {
				t.Fatal("ports not stamped")
			}
		}
	}
}

func TestCollectorHeaderCopied(t *testing.T) {
	_, f := testFabric(t)
	var captured []byte
	col := NewCollector(f, 16384, func(d *sflow.Datagram) error {
		if len(d.Flows) > 0 {
			captured = d.Flows[0].Raw.Header
		}
		return nil
	})
	header := []byte{9, 9, 9, 9}
	if err := col.AddFrame(f.PortOfMember(1), f.PortOfMember(2), header, 64); err != nil {
		t.Fatal(err)
	}
	header[0] = 0 // mutate the caller's buffer
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	if captured == nil || captured[0] != 9 {
		t.Fatal("collector must copy the header bytes")
	}
}

func TestCollectorCounters(t *testing.T) {
	_, f := testFabric(t)
	count := 0
	col := NewCollector(f, 16384, func(d *sflow.Datagram) error {
		count += len(d.Counters)
		return nil
	})
	for i := 0; i < 10; i++ {
		if err := col.AddCounters(f.PortOfMember(int32(i)), sflow.GenericInterfaceCounters{IfIndex: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("collected %d counter samples, want 10", count)
	}
}

func TestPortCountersAccumulate(t *testing.T) {
	_, f := testFabric(t)
	col := NewCollector(f, 1000, func(*sflow.Datagram) error { return nil })
	hdr := []byte{1, 2, 3, 4}
	if err := col.AddFrame(f.PortOfMember(3), f.PortOfMember(4), hdr, 100); err != nil {
		t.Fatal(err)
	}
	if err := col.AddFrame(f.PortOfMember(3), f.PortOfMember(5), hdr, 200); err != nil {
		t.Fatal(err)
	}
	in3 := col.PortCounters(f.PortOfMember(3))
	if in3.InOctets != 300*1000 {
		t.Fatalf("port 3 InOctets = %d, want %d", in3.InOctets, 300*1000)
	}
	if in3.InUcastPkts != 2000 {
		t.Fatalf("port 3 InUcastPkts = %d", in3.InUcastPkts)
	}
	out4 := col.PortCounters(f.PortOfMember(4))
	if out4.OutOctets != 100*1000 || out4.InOctets != 0 {
		t.Fatalf("port 4 counters wrong: %+v", out4)
	}
}

func TestEmitPortCounters(t *testing.T) {
	_, f := testFabric(t)
	var counterSamples int
	col := NewCollector(f, 1000, func(d *sflow.Datagram) error {
		counterSamples += len(d.Counters)
		return nil
	})
	hdr := []byte{1, 2, 3, 4}
	for i := int32(0); i < 5; i++ {
		if err := col.AddFrame(f.PortOfMember(i), f.PortOfMember(i+1), hdr, 100); err != nil {
			t.Fatal(err)
		}
	}
	if err := col.EmitPortCounters(); err != nil {
		t.Fatal(err)
	}
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	// One counter sample per distinct ingress port.
	if counterSamples != 5 {
		t.Fatalf("emitted %d counter samples, want 5", counterSamples)
	}
}

func TestCollectorSinkErrorPropagates(t *testing.T) {
	_, f := testFabric(t)
	boom := fmt.Errorf("sink failed")
	col := NewCollector(f, 1000, func(*sflow.Datagram) error { return boom })
	hdr := []byte{1}
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = col.AddFrame(f.PortOfMember(1), f.PortOfMember(2), hdr, 64)
	}
	if err == nil {
		err = col.Flush()
	}
	if err == nil {
		t.Fatal("sink error swallowed")
	}
}
