// Package alexa builds the popularity-ranked top-site lists the paper
// downloads weekly from www.alexa.com (top-1M, top-10K, top-1K) and uses
// in Section 3.3 to measure how much of the popular web the IXP's URI
// harvest recovers.
//
// The list derives from the world's site popularity with mild weekly
// rank noise, reflecting that many entries on the real lists are
// "dynamic and/or ephemeral".
package alexa

import (
	"sort"

	"ixplens/internal/dnssim"
	"ixplens/internal/randutil"
)

// List is one weekly snapshot of the ranked site list.
type List struct {
	// Week is the ISO week of the snapshot.
	Week int
	// Domains holds registrable domains, rank 1 first.
	Domains []string
	ranks   map[string]int
}

// Build derives the week's list from the DNS site population. seed keeps
// the rank jitter deterministic.
func Build(dns *dnssim.DB, isoWeek int, seed int64) *List {
	sites := dns.Sites()
	type entry struct {
		domain string
		score  float64
	}
	entries := make([]entry, 0, len(sites))
	for i := range sites {
		// Log-normal-ish weekly jitter: popularity times a hash factor.
		jitter := 0.6 + 0.8*randutil.HashUnit(uint64(seed), uint64(isoWeek), uint64(i))
		entries = append(entries, entry{sites[i].Domain, sites[i].Weight * jitter})
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].score > entries[j].score })
	l := &List{Week: isoWeek, ranks: make(map[string]int, len(entries))}
	for i, e := range entries {
		l.Domains = append(l.Domains, e.domain)
		l.ranks[e.domain] = i + 1
	}
	return l
}

// Top returns the first n domains (or all when fewer exist).
func (l *List) Top(n int) []string {
	if n > len(l.Domains) {
		n = len(l.Domains)
	}
	return l.Domains[:n]
}

// Rank returns a domain's 1-based rank, or 0 when unlisted.
func (l *List) Rank(domain string) int { return l.ranks[domain] }

// Recovery computes the fraction of the top-n list present in the
// observed set — the Section 3.3 recovery metric (20% of the top-1M,
// 63% of the top-10K, 80% of the top-1K in the paper).
func (l *List) Recovery(observed map[string]bool, n int) float64 {
	top := l.Top(n)
	if len(top) == 0 {
		return 0
	}
	hit := 0
	for _, d := range top {
		if observed[d] {
			hit++
		}
	}
	return float64(hit) / float64(len(top))
}
