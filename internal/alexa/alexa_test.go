package alexa

import (
	"testing"

	"ixplens/internal/dnssim"
	"ixplens/internal/netmodel"
)

func buildList(t testing.TB, week int) (*dnssim.DB, *List) {
	t.Helper()
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	d := dnssim.New(w)
	return d, Build(d, week, 1)
}

func TestBuildCoversAllSites(t *testing.T) {
	d, l := buildList(t, 45)
	if len(l.Domains) != len(d.Sites()) {
		t.Fatalf("list has %d domains, world has %d sites", len(l.Domains), len(d.Sites()))
	}
}

func TestRanksConsistent(t *testing.T) {
	_, l := buildList(t, 45)
	for i, dmn := range l.Top(50) {
		if l.Rank(dmn) != i+1 {
			t.Fatalf("rank of %q = %d, want %d", dmn, l.Rank(dmn), i+1)
		}
	}
	if l.Rank("not-listed.invalid") != 0 {
		t.Fatal("unlisted domain must rank 0")
	}
}

func TestTopTruncates(t *testing.T) {
	_, l := buildList(t, 45)
	if len(l.Top(10)) != 10 {
		t.Fatal("Top(10) wrong length")
	}
	if len(l.Top(1<<30)) != len(l.Domains) {
		t.Fatal("Top beyond size must return all")
	}
}

func TestWeeklyJitterChangesRanksDeterministically(t *testing.T) {
	_, l45a := buildList(t, 45)
	_, l45b := buildList(t, 45)
	_, l46 := buildList(t, 46)
	for i := range l45a.Domains {
		if l45a.Domains[i] != l45b.Domains[i] {
			t.Fatal("same week must give identical lists")
		}
	}
	same := 0
	for i := 0; i < len(l45a.Domains) && i < 100; i++ {
		if l45a.Domains[i] == l46.Domains[i] {
			same++
		}
	}
	if same == 100 {
		t.Fatal("weekly jitter has no effect")
	}
}

func TestPopularSitesRankHigh(t *testing.T) {
	d, l := buildList(t, 45)
	// The most popular site globally should rank within the top few
	// despite jitter.
	best := d.Sites()[0].Domain
	if r := l.Rank(best); r > 10 {
		t.Fatalf("most popular site ranks %d", r)
	}
}

func TestRecovery(t *testing.T) {
	_, l := buildList(t, 45)
	observed := map[string]bool{}
	for _, d := range l.Top(10) {
		observed[d] = true
	}
	if got := l.Recovery(observed, 10); got != 1.0 {
		t.Fatalf("Recovery of fully observed top-10 = %v", got)
	}
	if got := l.Recovery(observed, 20); got != 0.5 {
		t.Fatalf("Recovery with half coverage = %v", got)
	}
	if got := l.Recovery(map[string]bool{}, 10); got != 0 {
		t.Fatalf("Recovery of nothing = %v", got)
	}
	empty := &List{}
	if empty.Recovery(observed, 5) != 0 {
		t.Fatal("empty list recovery must be 0")
	}
}
