package routing_test

import (
	"fmt"

	"ixplens/internal/packet"
	"ixplens/internal/routing"
)

// ExampleTable shows a longest-prefix-match lookup against a small RIB.
func ExampleTable() {
	rib := routing.NewTable()
	p1, _ := packet.ParseIPv4("10.0.0.0")
	p2, _ := packet.ParseIPv4("10.1.0.0")
	rib.Insert(routing.MakePrefix(p1, 8), 64500)
	rib.Insert(routing.MakePrefix(p2, 16), 64501)

	ip, _ := packet.ParseIPv4("10.1.2.3")
	route, ok := rib.Lookup(ip)
	fmt.Println(ok, route.Prefix, route.ASN)
	// Output: true 10.1.0.0/16 64501
}

// ExampleASGraph_Classify derives the paper's A(L)/A(M)/A(G) classes.
func ExampleASGraph_Classify() {
	g := routing.NewASGraph()
	g.AddEdge(1, 2) // member 1 <-> member 2
	g.AddEdge(1, 3) // AS 3 hangs off member 1
	g.AddEdge(3, 4) // AS 4 is two hops out

	classes := g.Classify([]uint32{1, 2})
	fmt.Println(classes[1], classes[3], classes[4])
	// Output: A(L) A(M) A(G)
}
