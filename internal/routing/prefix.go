// Package routing provides the BGP-derived substrate the study leans on:
// a routing information base (prefix → origin AS) with longest-prefix
// match, and the AS-level graph used to split the routed AS set into the
// member set A(L), the distance-1 set A(M) and the remainder A(G)
// (Section 3.2 of the paper).
package routing

import (
	"fmt"
	"sort"

	"ixplens/internal/packet"
)

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	// Addr is the network address; bits below Len are zero.
	Addr packet.IPv4Addr
	// Len is the prefix length in bits, 0..32.
	Len uint8
}

// MakePrefix masks addr down to length bits.
func MakePrefix(addr packet.IPv4Addr, length uint8) Prefix {
	return Prefix{Addr: addr & Prefix{Len: length}.netmask(), Len: length}
}

// netmask returns the prefix's network mask.
func (p Prefix) netmask() packet.IPv4Addr {
	if p.Len == 0 {
		return 0
	}
	return packet.IPv4Addr(^uint32(0) << (32 - p.Len))
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip packet.IPv4Addr) bool {
	return ip&p.netmask() == p.Addr
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 {
	return 1 << (32 - p.Len)
}

// First returns the lowest address in the prefix.
func (p Prefix) First() packet.IPv4Addr { return p.Addr }

// Last returns the highest address in the prefix.
func (p Prefix) Last() packet.IPv4Addr {
	return p.Addr | ^p.netmask()
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Len > q.Len {
		p, q = q, p
	}
	return p.Contains(q.Addr)
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Len)
}

// SortPrefixes orders prefixes by address, then shorter-first; the
// canonical order used by RIB dumps and tests.
func SortPrefixes(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr != ps[j].Addr {
			return ps[i].Addr < ps[j].Addr
		}
		return ps[i].Len < ps[j].Len
	})
}
