package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ixplens/internal/packet"
)

func mustPrefix(t testing.TB, s string, length uint8) Prefix {
	t.Helper()
	a, err := packet.ParseIPv4(s)
	if err != nil {
		t.Fatal(err)
	}
	return MakePrefix(a, length)
}

func TestPrefixBasics(t *testing.T) {
	p := mustPrefix(t, "192.0.2.0", 24)
	if p.String() != "192.0.2.0/24" {
		t.Fatalf("String() = %q", p.String())
	}
	if !p.Contains(packet.MakeIPv4(192, 0, 2, 255)) {
		t.Fatal("Contains should include broadcast address")
	}
	if p.Contains(packet.MakeIPv4(192, 0, 3, 0)) {
		t.Fatal("Contains must reject next /24")
	}
	if p.NumAddrs() != 256 {
		t.Fatalf("NumAddrs = %d", p.NumAddrs())
	}
	if p.First() != packet.MakeIPv4(192, 0, 2, 0) || p.Last() != packet.MakeIPv4(192, 0, 2, 255) {
		t.Fatalf("First/Last wrong: %v..%v", p.First(), p.Last())
	}
}

func TestMakePrefixMasksHostBits(t *testing.T) {
	p := MakePrefix(packet.MakeIPv4(10, 1, 2, 3), 16)
	if p.Addr != packet.MakeIPv4(10, 1, 0, 0) {
		t.Fatalf("host bits not masked: %v", p.Addr)
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := mustPrefix(t, "10.0.0.0", 8)
	b := mustPrefix(t, "10.1.0.0", 16)
	c := mustPrefix(t, "11.0.0.0", 8)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("containing prefixes must overlap")
	}
	if a.Overlaps(c) || c.Overlaps(b) {
		t.Fatal("disjoint prefixes must not overlap")
	}
	zero := Prefix{} // 0.0.0.0/0 overlaps everything
	if !zero.Overlaps(a) || !a.Overlaps(zero) {
		t.Fatal("default route overlaps all")
	}
}

func TestTableLongestPrefixMatch(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(mustPrefix(t, "10.0.0.0", 8), 100)
	tbl.Insert(mustPrefix(t, "10.1.0.0", 16), 200)
	tbl.Insert(mustPrefix(t, "10.1.2.0", 24), 300)

	cases := []struct {
		ip   packet.IPv4Addr
		asn  uint32
		want bool
	}{
		{packet.MakeIPv4(10, 1, 2, 3), 300, true},
		{packet.MakeIPv4(10, 1, 9, 9), 200, true},
		{packet.MakeIPv4(10, 200, 0, 1), 100, true},
		{packet.MakeIPv4(11, 0, 0, 1), 0, false},
	}
	for _, c := range cases {
		asn, ok := tbl.LookupASN(c.ip)
		if ok != c.want || asn != c.asn {
			t.Errorf("Lookup(%v) = %d,%v want %d,%v", c.ip, asn, ok, c.asn, c.want)
		}
	}
	if tbl.Size() != 3 {
		t.Fatalf("Size = %d", tbl.Size())
	}
}

func TestTableReplace(t *testing.T) {
	tbl := NewTable()
	p := mustPrefix(t, "192.0.2.0", 24)
	if tbl.Insert(p, 1) {
		t.Fatal("first insert must not report replacement")
	}
	if !tbl.Insert(p, 2) {
		t.Fatal("second insert of same prefix must replace")
	}
	if tbl.Size() != 1 {
		t.Fatalf("Size = %d after replace", tbl.Size())
	}
	asn, _ := tbl.LookupASN(packet.MakeIPv4(192, 0, 2, 1))
	if asn != 2 {
		t.Fatalf("replacement not visible: asn=%d", asn)
	}
}

func TestTableDefaultRoute(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(Prefix{}, 65000) // 0.0.0.0/0
	asn, ok := tbl.LookupASN(packet.MakeIPv4(203, 0, 113, 77))
	if !ok || asn != 65000 {
		t.Fatalf("default route not matched: %d %v", asn, ok)
	}
}

func TestTableWalkAndRoutes(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(mustPrefix(t, "10.0.0.0", 8), 1)
	tbl.Insert(mustPrefix(t, "9.0.0.0", 8), 2)
	count := 0
	tbl.Walk(func(Route) bool { count++; return true })
	if count != 2 {
		t.Fatalf("Walk visited %d", count)
	}
	// Early stop.
	count = 0
	tbl.Walk(func(Route) bool { count++; return false })
	if count != 1 {
		t.Fatalf("Walk early-stop visited %d", count)
	}
	rs := tbl.Routes()
	if len(rs) != 2 || rs[0].ASN != 2 || rs[1].ASN != 1 {
		t.Fatalf("Routes not sorted: %+v", rs)
	}
}

// linearLookup is the brute-force reference implementation for the
// property test and the ablation benchmark.
func linearLookup(routes []Route, ip packet.IPv4Addr) (Route, bool) {
	best := -1
	for i, r := range routes {
		if r.Prefix.Contains(ip) && (best == -1 || r.Prefix.Len > routes[best].Prefix.Len) {
			best = i
		}
	}
	if best == -1 {
		return Route{}, false
	}
	return routes[best], true
}

// TestQuickTrieMatchesLinear: on random prefix sets and random probe
// addresses, the trie's LPM answer must agree with brute force.
func TestQuickTrieMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := NewTable()
		n := 1 + r.Intn(60)
		routes := make([]Route, 0, n)
		seen := map[Prefix]bool{}
		for i := 0; i < n; i++ {
			length := uint8(r.Intn(25) + 8)
			p := MakePrefix(packet.IPv4Addr(r.Uint32()), length)
			asn := uint32(r.Intn(1000) + 1)
			if seen[p] {
				continue
			}
			seen[p] = true
			tbl.Insert(p, asn)
			routes = append(routes, Route{Prefix: p, ASN: asn})
		}
		for probe := 0; probe < 200; probe++ {
			ip := packet.IPv4Addr(rng.Uint32())
			if probe%3 == 0 && len(routes) > 0 {
				// Bias probes into covered space.
				base := routes[rng.Intn(len(routes))].Prefix
				ip = base.Addr | packet.IPv4Addr(rng.Uint32())&^packet.IPv4Addr(base.netmask())
			}
			got, gok := tbl.Lookup(ip)
			want, wok := linearLookup(routes, ip)
			if gok != wok {
				return false
			}
			if gok && (got.Prefix != want.Prefix || got.ASN != want.ASN) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceClassString(t *testing.T) {
	if ClassLocal.String() != "A(L)" || ClassMiddle.String() != "A(M)" || ClassGlobal.String() != "A(G)" {
		t.Fatal("class notation wrong")
	}
	if DistanceClass(9).String() != "DistanceClass(9)" {
		t.Fatal("unknown class fallback wrong")
	}
}

func TestASGraphClassify(t *testing.T) {
	g := NewASGraph()
	// members: 1, 2. 3-4 hang off member 1; 5 hangs off 3 (distance 2).
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	g.AddEdge(3, 5)
	g.AddAS(6) // isolated: unreachable

	classes := g.Classify([]uint32{1, 2})
	want := map[uint32]DistanceClass{
		1: ClassLocal, 2: ClassLocal,
		3: ClassMiddle, 4: ClassMiddle,
		5: ClassGlobal, 6: ClassGlobal,
	}
	for asn, cls := range want {
		if classes[asn] != cls {
			t.Errorf("AS%d = %v, want %v", asn, classes[asn], cls)
		}
	}
}

func TestASGraphIgnoresDuplicatesAndSelfLoops(t *testing.T) {
	g := NewASGraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(1, 1)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.NumASes() != 2 {
		t.Fatalf("NumASes = %d, want 2", g.NumASes())
	}
	if len(g.Neighbors(1)) != 1 {
		t.Fatalf("Neighbors(1) = %v", g.Neighbors(1))
	}
}

func TestASGraphDistancesUnknownMember(t *testing.T) {
	g := NewASGraph()
	g.AddEdge(1, 2)
	dist := g.Distances([]uint32{99}) // member not in graph
	if dist[1] != -1 || dist[2] != -1 {
		t.Fatalf("unknown member should reach nothing: %v", dist)
	}
}

// TestQuickClassesPartition: A(L), A(M), A(G) always partition the AS
// set (DESIGN.md invariant).
func TestQuickClassesPartition(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewASGraph()
		n := 2 + r.Intn(100)
		for i := 0; i < n; i++ {
			g.AddAS(uint32(i))
		}
		for e := 0; e < n*2; e++ {
			g.AddEdge(uint32(r.Intn(n)), uint32(r.Intn(n)))
		}
		nm := 1 + r.Intn(5)
		members := make([]uint32, 0, nm)
		for i := 0; i < nm; i++ {
			members = append(members, uint32(r.Intn(n)))
		}
		classes := g.Classify(members)
		if len(classes) != g.NumASes() {
			return false
		}
		mset := map[uint32]bool{}
		for _, m := range members {
			mset[m] = true
		}
		for asn, cls := range classes {
			if mset[asn] != (cls == ClassLocal) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func buildRandomTable(n int, seed int64) (*Table, []Route) {
	r := rand.New(rand.NewSource(seed))
	tbl := NewTable()
	routes := make([]Route, 0, n)
	for len(routes) < n {
		p := MakePrefix(packet.IPv4Addr(r.Uint32()), uint8(12+r.Intn(13)))
		if tbl.Insert(p, uint32(r.Intn(40000)+1)) {
			continue
		}
		routes = append(routes, Route{Prefix: p})
	}
	return tbl, routes
}

func BenchmarkLPMTrie(b *testing.B) {
	tbl, _ := buildRandomTable(100_000, 1)
	r := rand.New(rand.NewSource(2))
	probes := make([]packet.IPv4Addr, 1024)
	for i := range probes {
		probes[i] = packet.IPv4Addr(r.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(probes[i&1023])
	}
}

// BenchmarkLPMTrieVsLinear is the ablation: the same lookups against a
// brute-force scan over the route list (at a smaller table size, since
// the linear scan is O(n) per probe).
func BenchmarkLPMTrieVsLinear(b *testing.B) {
	tbl, routes := buildRandomTable(10_000, 1)
	r := rand.New(rand.NewSource(2))
	probes := make([]packet.IPv4Addr, 1024)
	for i := range probes {
		probes[i] = packet.IPv4Addr(r.Uint32())
	}
	fullRoutes := tbl.Routes()
	_ = routes
	b.Run("trie", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tbl.Lookup(probes[i&1023])
		}
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linearLookup(fullRoutes, probes[i&1023])
		}
	})
}
