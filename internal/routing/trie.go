package routing

import (
	"sort"

	"ixplens/internal/packet"
)

// Route is one RIB entry: a prefix and its origin AS.
type Route struct {
	Prefix Prefix
	// ASN is the origin AS number announcing the prefix.
	ASN uint32
}

// Table is a routing table over IPv4 prefixes supporting longest-prefix
// match. It is a binary path-uncompressed trie: simple, allocation-light
// on lookup (zero), and fast enough that a full 450K-prefix RIB resolves
// tens of millions of addresses per second. An ablation benchmark
// compares it against a brute-force linear scan.
//
// Table is safe for concurrent readers once built; Insert must not race
// with Lookup.
type Table struct {
	nodes  []trieNode
	routes []Route
	size   int
}

// trieNode is one binary trie node. Children are indices into the node
// arena; 0 means absent (index 0 is the root, which is never a child).
type trieNode struct {
	child [2]uint32
	// route is the RIB entry index + 1 terminating at this node, or 0.
	route uint32
}

// NewTable returns an empty routing table.
func NewTable() *Table {
	return &Table{nodes: make([]trieNode, 1, 1024)}
}

// Size returns the number of routes in the table.
func (t *Table) Size() int { return t.size }

// Insert adds or replaces the route for p. It reports whether a previous
// entry for exactly p was replaced.
func (t *Table) Insert(p Prefix, asn uint32) (replaced bool) {
	p = MakePrefix(p.Addr, p.Len) // normalize stray host bits
	idx := uint32(0)
	for bit := 0; bit < int(p.Len); bit++ {
		b := uint32(p.Addr) >> (31 - bit) & 1
		next := t.nodes[idx].child[b]
		if next == 0 {
			t.nodes = append(t.nodes, trieNode{})
			next = uint32(len(t.nodes) - 1)
			t.nodes[idx].child[b] = next
		}
		idx = next
	}
	n := &t.nodes[idx]
	if n.route != 0 {
		t.routes[n.route-1] = Route{Prefix: p, ASN: asn}
		return true
	}
	t.routes = append(t.routes, Route{Prefix: p, ASN: asn})
	n.route = uint32(len(t.routes))
	t.size++
	return false
}

// Lookup returns the longest-prefix-match route for ip.
func (t *Table) Lookup(ip packet.IPv4Addr) (Route, bool) {
	var best uint32 // route index + 1
	idx := uint32(0)
	if r := t.nodes[0].route; r != 0 {
		best = r
	}
	for bit := 0; bit < 32; bit++ {
		b := uint32(ip) >> (31 - bit) & 1
		idx = t.nodes[idx].child[b]
		if idx == 0 {
			break
		}
		if r := t.nodes[idx].route; r != 0 {
			best = r
		}
	}
	if best == 0 {
		return Route{}, false
	}
	return t.routes[best-1], true
}

// LookupASN is a convenience wrapper returning only the origin ASN.
func (t *Table) LookupASN(ip packet.IPv4Addr) (uint32, bool) {
	r, ok := t.Lookup(ip)
	return r.ASN, ok
}

// Walk calls fn for every route in the table in unspecified order. It
// stops early if fn returns false.
func (t *Table) Walk(fn func(Route) bool) {
	for _, r := range t.routes {
		if !fn(r) {
			return
		}
	}
}

// Routes returns a copy of all routes, sorted canonically.
func (t *Table) Routes() []Route {
	out := make([]Route, len(t.routes))
	copy(out, t.routes)
	sortRoutes(out)
	return out
}

// sortRoutes orders routes identically to SortPrefixes.
func sortRoutes(rs []Route) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Prefix.Addr != rs[j].Prefix.Addr {
			return rs[i].Prefix.Addr < rs[j].Prefix.Addr
		}
		return rs[i].Prefix.Len < rs[j].Prefix.Len
	})
}
