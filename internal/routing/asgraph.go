package routing

import "fmt"

// DistanceClass partitions the routed AS set relative to the IXP member
// set, following Section 3.2 of the paper: A(L) is the members
// themselves, A(M) the ASes one AS-hop from a member, and A(G) everything
// further away.
type DistanceClass uint8

// Distance classes.
const (
	ClassLocal  DistanceClass = iota // A(L): IXP member ASes
	ClassMiddle                      // A(M): distance 1 from a member
	ClassGlobal                      // A(G): distance >= 2
)

// String returns the paper's notation for the class.
func (c DistanceClass) String() string {
	switch c {
	case ClassLocal:
		return "A(L)"
	case ClassMiddle:
		return "A(M)"
	case ClassGlobal:
		return "A(G)"
	default:
		return fmt.Sprintf("DistanceClass(%d)", uint8(c))
	}
}

// ASGraph is an undirected AS-level connectivity graph. Edges abstract
// BGP adjacencies (customer-provider and peering alike); the study only
// needs hop distances from the member set.
type ASGraph struct {
	adj   map[uint32][]uint32
	edges int
}

// NewASGraph returns an empty graph.
func NewASGraph() *ASGraph {
	return &ASGraph{adj: make(map[uint32][]uint32)}
}

// AddAS ensures an AS exists in the graph even if it has no edges yet.
func (g *ASGraph) AddAS(asn uint32) {
	if _, ok := g.adj[asn]; !ok {
		g.adj[asn] = nil
	}
}

// AddEdge adds an undirected adjacency between two ASes. Self-loops and
// duplicate edges are ignored.
func (g *ASGraph) AddEdge(a, b uint32) {
	if a == b {
		return
	}
	for _, n := range g.adj[a] {
		if n == b {
			return
		}
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	g.edges++
}

// NumASes returns the number of ASes known to the graph.
func (g *ASGraph) NumASes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *ASGraph) NumEdges() int { return g.edges }

// Neighbors returns the adjacency list of asn (shared slice; do not
// modify).
func (g *ASGraph) Neighbors(asn uint32) []uint32 { return g.adj[asn] }

// Distances runs a multi-source BFS from the member set and returns the
// hop distance of every AS in the graph. ASes unreachable from any
// member get distance -1.
func (g *ASGraph) Distances(members []uint32) map[uint32]int {
	dist := make(map[uint32]int, len(g.adj))
	for asn := range g.adj {
		dist[asn] = -1
	}
	queue := make([]uint32, 0, len(members))
	for _, m := range members {
		if d, ok := dist[m]; ok && d == -1 {
			dist[m] = 0
			queue = append(queue, m)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range g.adj[cur] {
			if dist[n] == -1 {
				dist[n] = dist[cur] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// Classify maps every AS to its distance class relative to members.
// Unreachable ASes are placed in A(G): from the IXP's perspective they
// are "far away" in exactly the sense of the paper's cartoon picture.
func (g *ASGraph) Classify(members []uint32) map[uint32]DistanceClass {
	dist := g.Distances(members)
	out := make(map[uint32]DistanceClass, len(dist))
	for asn, d := range dist {
		switch {
		case d == 0:
			out[asn] = ClassLocal
		case d == 1:
			out[asn] = ClassMiddle
		default:
			out[asn] = ClassGlobal
		}
	}
	return out
}
