// Package faultline injects deterministic faults into the sFlow capture
// path, modelling everything the paper's measurement infrastructure has
// to survive in production: datagrams lost on the wire or in socket
// buffers, duplicated or reordered by the network, truncated or
// bit-flipped by broken exporters, collectors stalling under load, and
// poisoned input panicking a worker. Every decision is a pure function
// of (seed, salt, datagram index), so a chaos run is exactly
// reproducible: rerunning with the same configuration faults the same
// datagrams in the same way.
//
// The package sits between a datagram producer and its consumer in
// either direction of flow: Injector.Sink wraps a push-style collector
// sink (the streaming pipeline), Injector.Source wraps a pull-style
// dissect.DatagramSource (the buffered pipeline and capture files).
// PanickyResolver poisons member-port lookups to exercise the dissection
// layer's panic quarantine, and TrackSource feeds a sequence tracker so
// the loss the injector creates is measured the same way real loss is.
package faultline

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"ixplens/internal/core/dissect"
	"ixplens/internal/randutil"
	"ixplens/internal/sflow"
	"ixplens/internal/vfs"
)

// Config describes the fault mix. The four rate fields are per-datagram
// probabilities; they must each lie in [0, 1] and sum to at most 1,
// because each datagram suffers at most one fault (drawn from a single
// uniform variate, which is what makes runs reproducible).
type Config struct {
	// Seed fixes the fault pattern; combined with a per-stream salt
	// (pipeline runs use the ISO week) and the datagram index.
	Seed uint64

	// Drop is the fraction of datagrams silently discarded — the loss
	// the sequence tracker should later estimate.
	Drop float64
	// Duplicate is the fraction of datagrams delivered twice.
	Duplicate float64
	// Reorder is the fraction of datagrams delayed by one position
	// (delivered after their successor).
	Reorder float64
	// Truncate is the fraction of datagrams that get one sampled
	// header snapped to a shorter prefix.
	Truncate float64
	// BitFlip is the fraction of datagrams that get a single bit of one
	// sampled header inverted.
	BitFlip float64

	// Stall pauses delivery for the given duration on every StallEvery-th
	// datagram (0 disables), modelling a collector briefly wedged on I/O.
	Stall      time.Duration
	StallEvery int

	// PanicAtLookup poisons the PanicAtLookup-th member-port lookup made
	// through a PanickyResolver built from this config (0 disables). The
	// panic fires exactly once per resolver.
	PanicAtLookup int64
}

// Validate rejects impossible fault mixes.
func (c *Config) Validate() error {
	sum := 0.0
	for _, r := range []float64{c.Drop, c.Duplicate, c.Reorder, c.Truncate, c.BitFlip} {
		if r < 0 || r > 1 {
			return fmt.Errorf("faultline: fault rate %v outside [0,1]", r)
		}
		sum += r
	}
	if sum > 1 {
		return fmt.Errorf("faultline: fault rates sum to %v > 1", sum)
	}
	if c.StallEvery < 0 {
		return fmt.Errorf("faultline: negative StallEvery")
	}
	return nil
}

// Active reports whether the config injects any fault at all.
func (c *Config) Active() bool {
	if c == nil {
		return false
	}
	return c.Drop > 0 || c.Duplicate > 0 || c.Reorder > 0 || c.Truncate > 0 ||
		c.BitFlip > 0 || (c.Stall > 0 && c.StallEvery > 0) || c.PanicAtLookup > 0
}

// Stats counts what the injector actually did. All fields are atomics:
// a Sink or Source is driven from one goroutine, but chaos tests read
// the stats while the pipeline is still running.
type Stats struct {
	Seen       atomic.Int64
	Dropped    atomic.Int64
	Duplicated atomic.Int64
	Reordered  atomic.Int64
	Truncated  atomic.Int64
	BitFlipped atomic.Int64
	Stalled    atomic.Int64
}

// String summarizes the fault tally for logs.
func (s *Stats) String() string {
	return fmt.Sprintf("faults{seen=%d drop=%d dup=%d reorder=%d trunc=%d flip=%d stall=%d}",
		s.Seen.Load(), s.Dropped.Load(), s.Duplicated.Load(), s.Reordered.Load(),
		s.Truncated.Load(), s.BitFlipped.Load(), s.Stalled.Load())
}

// Fault kinds, drawn per datagram from one uniform variate.
const (
	faultNone = iota
	faultDrop
	faultDup
	faultReorder
	faultTrunc
	faultFlip
)

// Injector applies a Config to a datagram stream. One injector drives
// one stream (its held-back reorder slot is single-stream state); build
// a fresh one per week.
type Injector struct {
	cfg   Config
	salt  uint64
	n     atomic.Int64
	held  *sflow.Datagram // reorder slot: delivered after its successor
	Stats Stats
}

// New builds an injector for one stream. salt distinguishes streams
// under the same seed — pipeline runs pass the ISO week.
func New(cfg Config, salt uint64) *Injector {
	return &Injector{cfg: cfg, salt: salt}
}

// decide picks this datagram's fault from a single uniform draw, so the
// fault kinds are mutually exclusive and the pattern is a pure function
// of (seed, salt, index).
func (inj *Injector) decide(n uint64) int {
	u := randutil.HashUnit(inj.cfg.Seed, inj.salt, n)
	for _, f := range [...]struct {
		rate float64
		kind int
	}{
		{inj.cfg.Drop, faultDrop},
		{inj.cfg.Duplicate, faultDup},
		{inj.cfg.Reorder, faultReorder},
		{inj.cfg.Truncate, faultTrunc},
		{inj.cfg.BitFlip, faultFlip},
	} {
		if u < f.rate {
			return f.kind
		}
		u -= f.rate
	}
	return faultNone
}

func (inj *Injector) maybeStall(n uint64) {
	if inj.cfg.Stall > 0 && inj.cfg.StallEvery > 0 && n%uint64(inj.cfg.StallEvery) == 0 {
		inj.Stats.Stalled.Add(1)
		time.Sleep(inj.cfg.Stall)
	}
}

// Sink wraps a push-style datagram sink (an ixp.Collector emit callback,
// a StreamProcessor's Add) with fault injection. Call Flush after the
// producer finishes to release a datagram still held back by reordering.
func (inj *Injector) Sink(next func(*sflow.Datagram) error) func(*sflow.Datagram) error {
	return func(d *sflow.Datagram) error {
		n := uint64(inj.n.Add(1))
		inj.Stats.Seen.Add(1)
		inj.maybeStall(n)
		switch inj.decide(n) {
		case faultDrop:
			inj.Stats.Dropped.Add(1)
			return nil
		case faultDup:
			inj.Stats.Duplicated.Add(1)
			// The copy is taken before the first delivery: sinks may
			// rewrite the datagram in place (the anonymizer does), and a
			// duplicate must replay the original bytes, not the rewrite.
			dup := d.Clone()
			if err := inj.deliver(next, d); err != nil {
				return err
			}
			return next(dup)
		case faultReorder:
			if inj.held == nil {
				inj.Stats.Reordered.Add(1)
				inj.held = d.Clone()
				return nil
			}
			// Already holding a datagram back; a second simultaneous
			// reorder degenerates to pass-through.
		case faultTrunc:
			inj.Stats.Truncated.Add(1)
			truncateDatagram(d, randutil.Hash64(inj.cfg.Seed, inj.salt, n, 1))
		case faultFlip:
			inj.Stats.BitFlipped.Add(1)
			flipDatagram(d, randutil.Hash64(inj.cfg.Seed, inj.salt, n, 2))
		}
		return inj.deliver(next, d)
	}
}

// deliver forwards d and, if a reordered datagram is being held back,
// releases it right after — the held datagram ends up exactly one
// position late.
func (inj *Injector) deliver(next func(*sflow.Datagram) error, d *sflow.Datagram) error {
	if err := next(d); err != nil {
		return err
	}
	if h := inj.held; h != nil {
		inj.held = nil
		return next(h)
	}
	return nil
}

// Flush releases a datagram still held back by reordering at the end of
// the stream. Harmless when nothing is held.
func (inj *Injector) Flush(next func(*sflow.Datagram) error) error {
	if h := inj.held; h != nil {
		inj.held = nil
		return next(h)
	}
	return nil
}

// Source wraps a pull-style DatagramSource with the same fault model as
// Sink. If the underlying source is rewindable, Reset replays the
// stream with the identical fault pattern.
type Source struct {
	inj   *Injector
	src   dissect.DatagramSource
	queue []*sflow.Datagram // clones pending delivery (dup, reorder)
}

// Source wraps src with this injector's fault model.
func (inj *Injector) Source(src dissect.DatagramSource) *Source {
	return &Source{inj: inj, src: src}
}

func (s *Source) pop(d *sflow.Datagram) {
	q := s.queue[0]
	s.queue = s.queue[1:]
	*d = *q
}

// Next yields the next surviving datagram, faults applied.
func (s *Source) Next(d *sflow.Datagram) error {
	if len(s.queue) > 0 {
		s.pop(d)
		return nil
	}
	inj := s.inj
	for {
		err := s.src.Next(d)
		if err == io.EOF {
			if h := inj.held; h != nil {
				inj.held = nil
				*d = *h
				return nil
			}
			return io.EOF
		}
		if err != nil {
			return err
		}
		n := uint64(inj.n.Add(1))
		inj.Stats.Seen.Add(1)
		inj.maybeStall(n)
		switch inj.decide(n) {
		case faultDrop:
			inj.Stats.Dropped.Add(1)
			continue
		case faultDup:
			inj.Stats.Duplicated.Add(1)
			// A held-back datagram goes out between the two copies, the
			// same order the push-side wrapper produces.
			if h := inj.held; h != nil {
				inj.held = nil
				s.queue = append(s.queue, h)
			}
			s.queue = append(s.queue, d.Clone())
		case faultReorder:
			if inj.held == nil {
				inj.Stats.Reordered.Add(1)
				inj.held = d.Clone()
				continue
			}
		case faultTrunc:
			inj.Stats.Truncated.Add(1)
			truncateDatagram(d, randutil.Hash64(inj.cfg.Seed, inj.salt, n, 1))
		case faultFlip:
			inj.Stats.BitFlipped.Add(1)
			flipDatagram(d, randutil.Hash64(inj.cfg.Seed, inj.salt, n, 2))
		}
		if h := inj.held; h != nil {
			inj.held = nil
			s.queue = append(s.queue, h)
		}
		return nil
	}
}

// Reset rewinds the wrapped source (when it supports it) and restarts
// the fault pattern from the beginning, so a second pass sees the
// identical faulted stream.
func (s *Source) Reset() {
	if r, ok := s.src.(dissect.RewindableSource); ok {
		r.Reset()
	}
	s.queue = nil
	s.inj.held = nil
	s.inj.n.Store(0)
}

// truncateDatagram snaps one sampled header to a shorter (possibly
// empty) prefix — the classifier must classify it as undecodable or by
// whatever layers remain, never crash.
func truncateDatagram(d *sflow.Datagram, h uint64) {
	if len(d.Flows) == 0 {
		return
	}
	raw := &d.Flows[h%uint64(len(d.Flows))].Raw
	raw.Header = TruncateHeader(raw.Header, randutil.SplitMix64(h))
}

// flipDatagram inverts one bit of one sampled header in place.
func flipDatagram(d *sflow.Datagram, h uint64) {
	if len(d.Flows) == 0 {
		return
	}
	raw := &d.Flows[h%uint64(len(d.Flows))].Raw
	FlipHeaderBit(raw.Header, randutil.SplitMix64(h))
}

// TruncateHeader returns hdr cut to a key-derived prefix length (it does
// not modify hdr). Exposed for building fuzz corpora.
func TruncateHeader(hdr []byte, key uint64) []byte {
	if len(hdr) == 0 {
		return hdr
	}
	return hdr[:int(key%uint64(len(hdr)))]
}

// FlipHeaderBit inverts one key-derived bit of hdr in place and returns
// hdr. Exposed for building fuzz corpora.
func FlipHeaderBit(hdr []byte, key uint64) []byte {
	if len(hdr) == 0 {
		return hdr
	}
	i := int(key % uint64(len(hdr)))
	hdr[i] ^= 1 << (randutil.SplitMix64(key) % 8)
	return hdr
}

// PanickyResolver wraps a member resolver and panics exactly once, at
// the configured lookup count — the seam through which faultline reaches
// the classifier workers to exercise their panic quarantine. Safe for
// concurrent use when the wrapped resolver is.
type PanickyResolver struct {
	Members dissect.MemberResolver
	// At is the 1-based lookup index that panics; 0 disables.
	At int64

	n atomic.Int64
}

// MemberOfPort forwards to the wrapped resolver, panicking on call
// number At.
func (r *PanickyResolver) MemberOfPort(port uint32) (int32, bool) {
	if r.At > 0 && r.n.Add(1) == r.At {
		panic(fmt.Sprintf("faultline: injected resolver panic at lookup %d", r.At))
	}
	return r.Members.MemberOfPort(port)
}

// Fired reports whether the injected panic has been triggered.
func (r *PanickyResolver) Fired() bool { return r.At > 0 && r.n.Load() >= r.At }

// TrackSource passes a datagram stream through untouched while feeding
// every datagram to a sequence tracker, so pull-based consumers (the
// buffered pipeline, capture files) measure loss the same way the UDP
// receiver does.
type TrackSource struct {
	Src dissect.DatagramSource
	Seq *sflow.SeqTracker
}

// Next forwards to the wrapped source, observing each datagram.
func (t *TrackSource) Next(d *sflow.Datagram) error {
	err := t.Src.Next(d)
	if err == nil {
		t.Seq.Observe(d)
	}
	return err
}

// FlipFileBit inverts one key-derived bit of the file at path in place,
// simulating silent disk corruption of a capture at rest. The byte
// offset is key modulo the file size; the bit within it is derived from
// the key. Returns the offset damaged.
func FlipFileBit(path string, key uint64) (int64, error) {
	return FlipFileBitFS(vfs.Default, path, key)
}

// FlipFileBitFS is FlipFileBit through an explicit vfs seam, so the
// corruption itself composes with an injecting FS. The damaged byte is
// synced to stable storage and close errors are surfaced — a corruptor
// that silently fails to corrupt would make chaos tests vacuous.
func FlipFileBitFS(fsys vfs.FS, path string, key uint64) (off int64, err error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if fi.Size() == 0 {
		return 0, fmt.Errorf("faultline: %s is empty, nothing to corrupt", path)
	}
	off = int64(key % uint64(fi.Size()))
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return 0, err
	}
	b[0] ^= 1 << (randutil.SplitMix64(key) % 8)
	if _, err := f.WriteAt(b[:], off); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return off, nil
}

// TruncateFileTail cuts the file at path to a key-derived prefix length
// (key modulo the file size), simulating a crash mid-write. Returns the
// resulting size.
func TruncateFileTail(path string, key uint64) (int64, error) {
	return TruncateFileTailFS(vfs.Default, path, key)
}

// TruncateFileTailFS is TruncateFileTail through an explicit vfs seam.
func TruncateFileTailFS(fsys vfs.FS, path string, key uint64) (int64, error) {
	fi, err := fsys.Stat(path)
	if err != nil {
		return 0, err
	}
	if fi.Size() == 0 {
		return 0, nil
	}
	n := int64(key % uint64(fi.Size()))
	return n, fsys.Truncate(path, n)
}
