// Storage-fault injection: a vfs.FS wrapper that degrades the disk the
// way faultline's datagram injector degrades the wire. Every fault
// decision is a pure function of (seed, path hash, operation kind,
// offset-or-index), so a chaos run over the same campaign reproduces
// the same ENOSPC, the same short write and the same torn rename —
// keying decisions on byte offsets (not a global op counter) keeps the
// schedule deterministic even when the parallel block reader issues
// ReadAt calls concurrently.
package faultline

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"

	"ixplens/internal/randutil"
	"ixplens/internal/vfs"
)

// Injected storage errors, testable with errors.Is.
var (
	// ErrInjectedIO marks a read or write failed by the injector — the
	// disk-tier analogue of a bit flip on the wire. Transient: retrying
	// the operation (a fresh draw at a fresh offset) can succeed.
	ErrInjectedIO = errors.New("faultline: injected I/O error")
	// ErrTornRename marks a rename the injector "crashed" before: the
	// temp file was written durably but never linked over its target,
	// exactly the window a power loss between write and rename leaves.
	// The source file survives as stale litter (its cleanup is
	// suppressed once, as the crashed process's cleanup would be).
	ErrTornRename = errors.New("faultline: injected torn rename (crash before rename)")
)

// FS operation kinds, salts for the fault draws.
const (
	fsOpRead = iota + 1
	fsOpWrite
	fsOpSync
	fsOpRename
)

// FSConfig describes the storage fault mix. Each rate is a per-decision
// probability in [0, 1]; unlike the datagram injector's single-draw
// design, the operations are distinct (a write cannot also be a
// rename), so the rates are independent.
type FSConfig struct {
	// Seed fixes the fault schedule. Same seed, same operations → same
	// faults, byte for byte.
	Seed uint64

	// Quota, when positive, is the total write-byte budget: once the FS
	// has accepted this many bytes, further writes fail with an error
	// wrapping vfs.ErrStorageFull (after a realistic partial write of
	// whatever budget remains). AddQuota frees space at runtime, the way
	// an operator clearing a full disk does.
	Quota int64

	// ShortWrite is the fraction of writes cut to a seeded prefix; the
	// cut write returns the partial count and an ErrInjectedIO.
	ShortWrite float64
	// WriteErr is the fraction of writes failed whole (EIO-class).
	WriteErr float64
	// ReadErr is the fraction of reads failed (EIO-class). Decisions key
	// on the read offset, so concurrent readers draw reproducibly.
	ReadErr float64
	// SyncFail is the fraction of fsyncs that report failure (the data
	// may or may not be durable — callers must treat it as not).
	SyncFail float64
	// SyncCorrupt is the fraction of fsyncs that report success and then
	// corrupt one seeded bit of the file — firmware that acknowledges a
	// flush it later loses. The lie is only caught by reading back.
	SyncCorrupt float64
	// TornRename is the fraction of renames crashed between the durable
	// temp write and the link: the rename fails, the target keeps its
	// old bytes, and the source is left behind as stale temp litter.
	TornRename float64
}

// Validate rejects impossible storage fault mixes.
func (c *FSConfig) Validate() error {
	for _, r := range []float64{c.ShortWrite, c.WriteErr, c.ReadErr, c.SyncFail, c.SyncCorrupt, c.TornRename} {
		if r < 0 || r > 1 {
			return fmt.Errorf("faultline: fs fault rate %v outside [0,1]", r)
		}
	}
	if c.Quota < 0 {
		return fmt.Errorf("faultline: negative fs quota %d", c.Quota)
	}
	return nil
}

// Active reports whether the config injects any storage fault at all.
func (c *FSConfig) Active() bool {
	if c == nil {
		return false
	}
	return c.Quota > 0 || c.ShortWrite > 0 || c.WriteErr > 0 || c.ReadErr > 0 ||
		c.SyncFail > 0 || c.SyncCorrupt > 0 || c.TornRename > 0
}

// FSStats counts what the storage injector actually did. All fields are
// atomics: chaos tests read them while a campaign is still running.
type FSStats struct {
	ShortWrites  atomic.Int64
	WriteErrs    atomic.Int64
	ReadErrs     atomic.Int64
	SyncFails    atomic.Int64
	SyncCorrupts atomic.Int64
	TornRenames  atomic.Int64
	NoSpace      atomic.Int64
}

// Total sums every injected fault.
func (s *FSStats) Total() int64 {
	return s.ShortWrites.Load() + s.WriteErrs.Load() + s.ReadErrs.Load() +
		s.SyncFails.Load() + s.SyncCorrupts.Load() + s.TornRenames.Load() + s.NoSpace.Load()
}

// String summarizes the tally for logs.
func (s *FSStats) String() string {
	return fmt.Sprintf("fsfaults{short=%d werr=%d rerr=%d syncfail=%d synccorrupt=%d torn=%d nospace=%d}",
		s.ShortWrites.Load(), s.WriteErrs.Load(), s.ReadErrs.Load(),
		s.SyncFails.Load(), s.SyncCorrupts.Load(), s.TornRenames.Load(), s.NoSpace.Load())
}

// FS wraps an inner vfs.FS with the deterministic storage fault model.
// Safe for concurrent use when the inner FS is.
type FS struct {
	inner vfs.FS
	cfg   FSConfig
	Stats FSStats

	// written is the cumulative accepted write-byte count the quota
	// meters; extra is budget freed at runtime via AddQuota.
	written atomic.Int64
	extra   atomic.Int64

	mu sync.Mutex
	// torn holds source paths of torn renames whose next Remove is
	// suppressed (the simulated crash killed the cleanup), leaving the
	// temp file behind as the stale litter a real crash strands.
	torn map[string]bool
	// renames counts renames per destination path, salting their draws.
	renames map[string]uint64
	// opens counts opens per path. The count salts each handle's fault
	// stream: a REWRITE of the same file draws fresh faults, so a
	// deterministic retry is not condemned to the identical failure
	// forever — while the schedule as a whole stays a pure function of
	// (seed, operation history), which is itself deterministic for a
	// seeded campaign.
	opens map[string]uint64
}

// NewFS builds a fault-injecting FS over inner (vfs.Default when nil).
func NewFS(inner vfs.FS, cfg FSConfig) *FS {
	if inner == nil {
		inner = vfs.Default
	}
	return &FS{
		inner:   inner,
		cfg:     cfg,
		torn:    make(map[string]bool),
		renames: make(map[string]uint64),
		opens:   make(map[string]uint64),
	}
}

// Inner exposes the wrapped FS (chaos tests verify final bytes through
// it, outside the fault model).
func (f *FS) Inner() vfs.FS { return f.inner }

// AddQuota frees n bytes of write budget — the injected equivalent of
// an operator deleting files from a full disk. No-op when the config
// has no quota.
func (f *FS) AddQuota(n int64) {
	if n > 0 {
		f.extra.Add(n)
	}
}

// QuotaRemaining reports the bytes of write budget left (0 when
// exhausted); -1 means unmetered.
func (f *FS) QuotaRemaining() int64 {
	if f.cfg.Quota <= 0 {
		return -1
	}
	rem := f.cfg.Quota + f.extra.Load() - f.written.Load()
	if rem < 0 {
		rem = 0
	}
	return rem
}

// pathHash keys a file's fault stream. Hashing the path (rather than a
// handle counter) keeps the schedule stable across re-opens.
func pathHash(name string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, name)
	return randutil.SplitMix64(h.Sum64())
}

// draw yields the uniform variate for one (path, op, index) decision.
func (f *FS) draw(ph uint64, op int, index uint64) float64 {
	return randutil.HashUnit(f.cfg.Seed, ph, uint64(op), index)
}

// handleKey derives a handle's fault-stream key from the path and its
// open ordinal (see FS.opens).
func (f *FS) handleKey(name string) uint64 {
	f.mu.Lock()
	n := f.opens[name]
	f.opens[name] = n + 1
	f.mu.Unlock()
	return randutil.Hash64(f.cfg.Seed, pathHash(name), n)
}

// wrap builds the fault-injecting file handle.
func (f *FS) wrap(file vfs.File, name string) vfs.File {
	return &faultFile{File: file, fs: f, path: name, ph: f.handleKey(name)}
}

// Open implements vfs.FS.
func (f *FS) Open(name string) (vfs.File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(file, name), nil
}

// Create implements vfs.FS.
func (f *FS) Create(name string) (vfs.File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(file, name), nil
}

// OpenFile implements vfs.FS.
func (f *FS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f.wrap(file, name), nil
}

// CreateTemp implements vfs.FS. The fault stream keys on the pattern
// (plus its open ordinal), not the randomized final name, so temp
// writes draw reproducibly.
func (f *FS) CreateTemp(dir, pattern string) (vfs.File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: file.Name(), ph: f.handleKey(dir + "/" + pattern)}, nil
}

// Rename implements vfs.FS, injecting torn renames.
func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	n := f.renames[newpath]
	f.renames[newpath] = n + 1
	f.mu.Unlock()
	if f.draw(pathHash(newpath), fsOpRename, n) < f.cfg.TornRename {
		f.Stats.TornRenames.Add(1)
		f.mu.Lock()
		f.torn[oldpath] = true
		f.mu.Unlock()
		return fmt.Errorf("faultline: rename %s -> %s: %w", oldpath, newpath, ErrTornRename)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements vfs.FS. The first Remove of a torn rename's source
// is suppressed — the simulated crash happened before any cleanup ran,
// so the stale temp must survive for the litter sweep to find.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	if f.torn[name] {
		delete(f.torn, name)
		f.mu.Unlock()
		return nil
	}
	f.mu.Unlock()
	return f.inner.Remove(name)
}

// ReadDir implements vfs.FS.
func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }

// MkdirAll implements vfs.FS.
func (f *FS) MkdirAll(path string, perm fs.FileMode) error { return f.inner.MkdirAll(path, perm) }

// Stat implements vfs.FS.
func (f *FS) Stat(name string) (fs.FileInfo, error) { return f.inner.Stat(name) }

// Truncate implements vfs.FS.
func (f *FS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

// SyncDir implements vfs.FS. Directory syncs pass through: the torn
// rename window is modelled at Rename itself.
func (f *FS) SyncDir(dir string) error { return f.inner.SyncDir(dir) }

// chargeQuota meters n bytes against the write budget, returning how
// many the "disk" accepts.
func (f *FS) chargeQuota(n int) int {
	if f.cfg.Quota <= 0 {
		return n
	}
	budget := f.cfg.Quota + f.extra.Load()
	used := f.written.Add(int64(n))
	over := used - budget
	if over <= 0 {
		return n
	}
	// Hand back what the budget could not cover so freed quota is not
	// consumed by bytes that never landed.
	f.written.Add(-min64(over, int64(n)))
	accepted := int64(n) - over
	if accepted < 0 {
		accepted = 0
	}
	return int(accepted)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// faultFile injects faults on one open handle. The write offset is
// tracked per handle (the persistence paths write sequentially), reads
// key on their file offset, syncs on a per-handle index.
type faultFile struct {
	vfs.File
	fs   *FS
	path string
	ph   uint64

	mu    sync.Mutex
	pos   int64 // sequential read/write cursor, maintained by Read/Write/Seek
	syncs uint64
}

// errInjectedIO builds the EIO-class error for one op.
func injectedIO(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: ErrInjectedIO}
}

// Read implements io.Reader with seeded EIO injection keyed on the
// current offset.
func (f *faultFile) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.pos
	f.mu.Unlock()
	if len(p) > 0 && f.fs.draw(f.ph, fsOpRead, uint64(off)) < f.fs.cfg.ReadErr {
		f.fs.Stats.ReadErrs.Add(1)
		return 0, injectedIO("read", f.path)
	}
	n, err := f.File.Read(p)
	f.mu.Lock()
	f.pos += int64(n)
	f.mu.Unlock()
	return n, err
}

// ReadAt implements io.ReaderAt; keying on off keeps concurrent readers
// deterministic regardless of scheduling.
func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if len(p) > 0 && f.fs.draw(f.ph, fsOpRead, uint64(off)) < f.fs.cfg.ReadErr {
		f.fs.Stats.ReadErrs.Add(1)
		return 0, injectedIO("readat", f.path)
	}
	return f.File.ReadAt(p, off)
}

// Seek implements io.Seeker, tracking the cursor the read draws key on.
func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	n, err := f.File.Seek(offset, whence)
	if err == nil {
		f.mu.Lock()
		f.pos = n
		f.mu.Unlock()
	}
	return n, err
}

// Write implements io.Writer: quota first (ENOSPC accepts a realistic
// partial write of the remaining budget), then seeded short writes and
// whole-write failures keyed on the handle's byte offset.
func (f *faultFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	off := f.pos
	f.mu.Unlock()
	if len(p) > 0 {
		u := f.fs.draw(f.ph, fsOpWrite, uint64(off))
		switch {
		case u < f.fs.cfg.ShortWrite:
			f.fs.Stats.ShortWrites.Add(1)
			cut := int(randutil.Hash64(f.fs.cfg.Seed, f.ph, uint64(off), 1) % uint64(len(p)))
			n, err := f.writeQuota(p[:cut])
			if err != nil {
				return n, err
			}
			return n, fmt.Errorf("faultline: short write %d of %d bytes at %s:%d: %w",
				n, len(p), f.path, off, ErrInjectedIO)
		case u < f.fs.cfg.ShortWrite+f.fs.cfg.WriteErr:
			f.fs.Stats.WriteErrs.Add(1)
			return 0, injectedIO("write", f.path)
		}
	}
	n, err := f.writeQuota(p)
	if err != nil || n < len(p) {
		if err == nil {
			err = io.ErrShortWrite
		}
		return n, err
	}
	return n, nil
}

// writeQuota performs the metered write of p, failing with a
// storage-full error once the budget is gone.
func (f *faultFile) writeQuota(p []byte) (int, error) {
	accepted := f.fs.chargeQuota(len(p))
	n := 0
	var err error
	if accepted > 0 {
		n, err = f.File.Write(p[:accepted])
		f.mu.Lock()
		f.pos += int64(n)
		f.mu.Unlock()
		if err != nil {
			return n, err
		}
	}
	if accepted < len(p) {
		f.fs.Stats.NoSpace.Add(1)
		return n, fmt.Errorf("faultline: write %s: quota exhausted after %d bytes: %w",
			f.path, f.fs.written.Load(), vfs.ErrStorageFull)
	}
	return n, err
}

// WriteAt implements io.WriterAt with the same write fault draws.
func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if len(p) > 0 {
		u := f.fs.draw(f.ph, fsOpWrite, uint64(off))
		if u < f.fs.cfg.ShortWrite+f.fs.cfg.WriteErr {
			f.fs.Stats.WriteErrs.Add(1)
			return 0, injectedIO("writeat", f.path)
		}
	}
	accepted := f.fs.chargeQuota(len(p))
	if accepted < len(p) {
		f.fs.Stats.NoSpace.Add(1)
		return 0, fmt.Errorf("faultline: writeat %s: %w", f.path, vfs.ErrStorageFull)
	}
	return f.File.WriteAt(p, off)
}

// Sync implements the durability acknowledgement with two failure
// modes: an honest failure (SyncFail — the caller must assume nothing
// landed) and a lie (SyncCorrupt — success is reported, then one seeded
// bit of the file is flipped, the write-back loss only a read-back
// digest can catch).
func (f *faultFile) Sync() error {
	f.mu.Lock()
	n := f.syncs
	f.syncs++
	f.mu.Unlock()
	u := f.fs.draw(f.ph, fsOpSync, n)
	switch {
	case u < f.fs.cfg.SyncFail:
		f.fs.Stats.SyncFails.Add(1)
		return &fs.PathError{Op: "sync", Path: f.path, Err: ErrInjectedIO}
	case u < f.fs.cfg.SyncFail+f.fs.cfg.SyncCorrupt:
		if err := f.File.Sync(); err != nil {
			return err
		}
		if f.corruptOneBit(n) {
			f.fs.Stats.SyncCorrupts.Add(1)
		}
		return nil // the lie: acknowledged, then lost
	}
	return f.File.Sync()
}

// corruptOneBit flips one seeded bit of the file through a separate
// read-write handle on the inner FS (the faulted handle may be
// write-only, as the journal's is). Reports whether a bit was flipped.
func (f *faultFile) corruptOneBit(syncIdx uint64) bool {
	fi, err := f.File.Stat()
	if err != nil || fi.Size() == 0 {
		return false
	}
	rw, err := f.fs.inner.OpenFile(f.path, os.O_RDWR, 0)
	if err != nil {
		return false
	}
	defer rw.Close()
	key := randutil.Hash64(f.fs.cfg.Seed, f.ph, syncIdx, 3)
	off := int64(key % uint64(fi.Size()))
	var b [1]byte
	if _, err := rw.ReadAt(b[:], off); err != nil {
		return false
	}
	b[0] ^= 1 << (randutil.SplitMix64(key) % 8)
	_, err = rw.WriteAt(b[:], off)
	return err == nil
}
