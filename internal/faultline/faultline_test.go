package faultline

import (
	"io"
	"math"
	"testing"

	"ixplens/internal/core/dissect"
	"ixplens/internal/sflow"
)

func synthDatagrams(n int) []sflow.Datagram {
	ds := make([]sflow.Datagram, n)
	for i := range ds {
		ds[i] = sflow.Datagram{
			AgentAddr:   [4]byte{10, 0, 0, 1},
			SequenceNum: uint32(i + 1),
			Flows: []sflow.FlowSample{{
				SequenceNum: uint32(i + 1), SamplingRate: 100, HasRaw: true,
				Raw: sflow.RawPacketHeader{
					Protocol: sflow.HeaderProtoEthernet, FrameLength: 600,
					Header: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
				},
			}},
		}
	}
	return ds
}

func runSink(t *testing.T, cfg Config, salt uint64, ds []sflow.Datagram) ([]uint32, *Injector) {
	t.Helper()
	inj := New(cfg, salt)
	var got []uint32
	sink := inj.Sink(func(d *sflow.Datagram) error {
		got = append(got, d.SequenceNum)
		return nil
	})
	for i := range ds {
		if err := sink(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := inj.Flush(func(d *sflow.Datagram) error {
		got = append(got, d.SequenceNum)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got, inj
}

var chaosMix = Config{
	Seed: 7, Drop: 0.05, Duplicate: 0.02, Reorder: 0.02, Truncate: 0.01, BitFlip: 0.01,
}

func TestSinkDeterministic(t *testing.T) {
	a, injA := runSink(t, chaosMix, 45, synthDatagrams(2000))
	b, injB := runSink(t, chaosMix, 45, synthDatagrams(2000))
	if len(a) != len(b) {
		t.Fatalf("delivery count diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
	if injA.Stats.String() != injB.Stats.String() {
		t.Fatalf("stats diverged:\n%v\n%v", &injA.Stats, &injB.Stats)
	}
	// A different salt (another week) faults a different set of datagrams.
	c, _ := runSink(t, chaosMix, 46, synthDatagrams(2000))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("salt change did not alter the fault pattern")
	}
}

func TestSinkRatesAndAccounting(t *testing.T) {
	const n = 20000
	got, inj := runSink(t, chaosMix, 45, synthDatagrams(n))
	st := &inj.Stats
	if st.Seen.Load() != n {
		t.Fatalf("seen %d of %d", st.Seen.Load(), n)
	}
	// Conservation: every datagram is delivered exactly once, except
	// drops (zero times) and duplicates (twice).
	want := n - st.Dropped.Load() + st.Duplicated.Load()
	if int64(len(got)) != want {
		t.Fatalf("delivered %d, conservation says %d (%v)", len(got), want, st)
	}
	for _, c := range []struct {
		name string
		got  int64
		rate float64
	}{
		{"drop", st.Dropped.Load(), chaosMix.Drop},
		{"dup", st.Duplicated.Load(), chaosMix.Duplicate},
		{"reorder", st.Reordered.Load(), chaosMix.Reorder},
		{"trunc", st.Truncated.Load(), chaosMix.Truncate},
		{"flip", st.BitFlipped.Load(), chaosMix.BitFlip},
	} {
		frac := float64(c.got) / n
		if math.Abs(frac-c.rate) > c.rate/2 {
			t.Errorf("%s rate = %v, configured %v", c.name, frac, c.rate)
		}
	}
}

// TestFaultsAsSeenBySequenceTracker closes the loop with the loss
// estimator: drops must register as gaps, duplicates as duplicates,
// reorderings as reorderings — and a pure-reorder stream must not be
// booked as loss.
func TestFaultsAsSeenBySequenceTracker(t *testing.T) {
	var tr sflow.SeqTracker
	inj := New(Config{Seed: 7, Drop: 0.05}, 45)
	sink := inj.Sink(func(d *sflow.Datagram) error { tr.Observe(d); return nil })
	ds := synthDatagrams(10000)
	for i := range ds {
		if err := sink(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if int64(st.GapDatagrams) != inj.Stats.Dropped.Load() {
		t.Fatalf("tracker saw %d gap datagrams, injector dropped %d", st.GapDatagrams, inj.Stats.Dropped.Load())
	}
	est, injected := tr.EstLoss(), 0.05
	if est < injected/2 || est > injected*2 {
		t.Fatalf("EstLoss = %v for %v injected", est, injected)
	}

	tr = sflow.SeqTracker{}
	inj = New(Config{Seed: 7, Reorder: 0.05}, 45)
	sink = inj.Sink(func(d *sflow.Datagram) error { tr.Observe(d); return nil })
	ds = synthDatagrams(10000)
	for i := range ds {
		if err := sink(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	_ = inj.Flush(func(d *sflow.Datagram) error { tr.Observe(d); return nil })
	st = tr.Stats()
	if st.GapDatagrams != 0 {
		t.Fatalf("pure reorder booked as loss: %+v", st)
	}
	if st.Reordered == 0 {
		t.Fatal("tracker saw no reordering")
	}
}

// TestSourceMatchesSink: the pull-side wrapper must produce the exact
// delivery sequence the push-side wrapper does for the same seed/salt.
func TestSourceMatchesSink(t *testing.T) {
	ds := synthDatagrams(3000)
	fromSink, _ := runSink(t, chaosMix, 45, synthDatagrams(3000))

	src := New(chaosMix, 45).Source(&dissect.SliceSource{Datagrams: ds})
	var fromSource []uint32
	var d sflow.Datagram
	for {
		err := src.Next(&d)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		fromSource = append(fromSource, d.SequenceNum)
	}
	if len(fromSink) != len(fromSource) {
		t.Fatalf("sink delivered %d, source %d", len(fromSink), len(fromSource))
	}
	for i := range fromSink {
		if fromSink[i] != fromSource[i] {
			t.Fatalf("delivery %d diverged: sink %d, source %d", i, fromSink[i], fromSource[i])
		}
	}
}

// TestSourceResetReplaysFaults: a rewound faulted source replays the
// identical faulted stream, including the mutated header bytes.
func TestSourceResetReplaysFaults(t *testing.T) {
	cfg := chaosMix
	cfg.Truncate, cfg.BitFlip = 0.2, 0.2
	src := New(cfg, 45).Source(&dissect.SliceSource{Datagrams: synthDatagrams(500)})
	pass := func() (seqs []uint32, hdrs []string) {
		var d sflow.Datagram
		for {
			err := src.Next(&d)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			seqs = append(seqs, d.SequenceNum)
			hdrs = append(hdrs, string(d.Flows[0].Raw.Header))
		}
	}
	seq1, hdr1 := pass()
	src.Reset()
	seq2, hdr2 := pass()
	if len(seq1) != len(seq2) {
		t.Fatalf("replay length diverged: %d vs %d", len(seq1), len(seq2))
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] || hdr1[i] != hdr2[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

type mapMembers map[uint32]int32

func (m mapMembers) MemberOfPort(p uint32) (int32, bool) {
	v, ok := m[p]
	return v, ok
}

func TestPanickyResolverFiresExactlyOnce(t *testing.T) {
	r := &PanickyResolver{Members: mapMembers{9: 3}, At: 3}
	mustPanic := func(want bool) {
		defer func() {
			if got := recover() != nil; got != want {
				t.Fatalf("panic = %v, want %v", got, want)
			}
		}()
		if v, ok := r.MemberOfPort(9); !ok || v != 3 {
			t.Fatalf("lookup = %d, %v", v, ok)
		}
	}
	if r.Fired() {
		t.Fatal("fired before any lookup")
	}
	mustPanic(false)
	mustPanic(false)
	mustPanic(true)
	if !r.Fired() {
		t.Fatal("not marked fired")
	}
	mustPanic(false) // once only
}

func TestConfigValidate(t *testing.T) {
	if err := (&Config{Drop: 0.6, Duplicate: 0.6}).Validate(); err == nil {
		t.Fatal("rates summing over 1 accepted")
	}
	if err := (&Config{Drop: -0.1}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := chaosMix.Validate(); err != nil {
		t.Fatal(err)
	}
	if (&Config{}).Active() || (*Config)(nil).Active() {
		t.Fatal("inactive config reported active")
	}
	if !(&Config{PanicAtLookup: 1}).Active() {
		t.Fatal("panic-only config reported inactive")
	}
}

func TestHeaderMutators(t *testing.T) {
	hdr := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	tr := TruncateHeader(hdr, 3)
	if len(tr) != 3 || &tr[0] != &hdr[0] {
		t.Fatalf("truncate gave len %d", len(tr))
	}
	if got := TruncateHeader(nil, 5); got != nil {
		t.Fatal("nil header truncation")
	}
	before := append([]byte(nil), hdr...)
	FlipHeaderBit(hdr, 12345)
	diff := 0
	for i := range hdr {
		if hdr[i] != before[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip changed %d bytes", diff)
	}
	FlipHeaderBit(nil, 1) // must not panic
}
