package faultline

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ixplens/internal/vfs"
)

// opLog drives a fixed serial script of operations against an FS and
// records every outcome, so two same-seed instances can be compared
// op for op. The script exercises write, read, sync, rename and remove
// across several paths.
func opLog(t *testing.T, fsys vfs.FS, dir string) []string {
	t.Helper()
	var log []string
	note := func(op string, err error) {
		switch {
		case err == nil:
			log = append(log, op+":ok")
		case errors.Is(err, ErrInjectedIO):
			log = append(log, op+":eio")
		case errors.Is(err, ErrTornRename):
			log = append(log, op+":torn")
		case vfs.IsStorageFull(err):
			log = append(log, op+":nospace")
		default:
			log = append(log, op+":err")
		}
	}
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < 8; i++ {
		path := filepath.Join(dir, "f"+string(rune('a'+i)))
		tmp := path + ".tmp"
		f, err := fsys.Create(tmp)
		note("create", err)
		if err != nil {
			continue
		}
		for j := 0; j < 4; j++ {
			_, werr := f.Write(payload)
			note("write", werr)
		}
		note("sync", f.Sync())
		note("close", f.Close())
		note("rename", fsys.Rename(tmp, path))
		if g, err := fsys.Open(path); err == nil {
			buf := make([]byte, 64)
			for {
				_, rerr := g.Read(buf)
				if rerr == io.EOF {
					break
				}
				note("read", rerr)
				if rerr != nil {
					break
				}
			}
			g.Close()
		}
	}
	return log
}

// TestFSDeterministic: same seed, same op script, same fault schedule —
// byte for byte — and a different seed produces a different one.
func TestFSDeterministic(t *testing.T) {
	cfg := FSConfig{
		Seed:       42,
		ShortWrite: 0.1,
		WriteErr:   0.05,
		ReadErr:    0.1,
		SyncFail:   0.2,
		TornRename: 0.3,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Identical directory names keep the path-hashed draws identical.
	root := t.TempDir()
	dirA := filepath.Join(root, "a", "same")
	dirB := filepath.Join(root, "b", "same")
	// The draws hash the full path, so use a relative-identical layout:
	// chdir into each parent so the script sees the same path strings.
	for _, d := range []string{dirA, dirB} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	run := func(parent string, cfg FSConfig) []string {
		if err := os.Chdir(parent); err != nil {
			t.Fatal(err)
		}
		defer os.Chdir(wd)
		return opLog(t, NewFS(vfs.OS{}, cfg), "same")
	}
	logA := run(filepath.Join(root, "a"), cfg)
	logB := run(filepath.Join(root, "b"), cfg)
	if strings.Join(logA, ",") != strings.Join(logB, ",") {
		t.Fatalf("same seed, different fault schedule:\nA: %v\nB: %v", logA, logB)
	}
	faults := 0
	for _, op := range logA {
		if !strings.HasSuffix(op, ":ok") {
			faults++
		}
	}
	if faults == 0 {
		t.Fatalf("fault rates injected nothing across %d ops", len(logA))
	}

	other := cfg
	other.Seed = 43
	logC := run(filepath.Join(root, "a"), other)
	if strings.Join(logA, ",") == strings.Join(logC, ",") {
		t.Fatalf("different seeds produced identical %d-op fault schedule", len(logA))
	}
}

// TestFSQuota: writes fail with a storage-full error once the budget is
// gone, partial writes consume only what landed, and AddQuota revives
// the disk.
func TestFSQuota(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFS(vfs.OS{}, FSConfig{Seed: 7, Quota: 100})
	path := filepath.Join(dir, "q.bin")
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write(make([]byte, 80)); n != 80 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err := f.Write(make([]byte, 80))
	if !vfs.IsStorageFull(err) {
		t.Fatalf("expected storage-full, got n=%d err=%v", n, err)
	}
	if n != 20 {
		t.Fatalf("partial write should land remaining budget 20, wrote %d", n)
	}
	if rem := fsys.QuotaRemaining(); rem != 0 {
		t.Fatalf("remaining = %d, want 0", rem)
	}
	if _, err := f.Write([]byte("x")); !vfs.IsStorageFull(err) {
		t.Fatalf("write on full disk: %v", err)
	}
	fsys.AddQuota(1000)
	if n, err := f.Write(make([]byte, 60)); n != 60 || err != nil {
		t.Fatalf("write after AddQuota: n=%d err=%v", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if fsys.Stats.NoSpace.Load() < 2 {
		t.Fatalf("NoSpace stat = %d, want >= 2", fsys.Stats.NoSpace.Load())
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() != 160 {
		t.Fatalf("final size %v, err %v; want 160 accepted bytes", fi.Size(), err)
	}
}

// TestFSTornRename: the rename fails with ErrTornRename, the target
// keeps its old bytes, the source survives its first Remove as stale
// litter, and a later sweep can actually delete it.
func TestFSTornRename(t *testing.T) {
	dir := t.TempDir()
	// TornRename: 1 guarantees the injection regardless of seed.
	fsys := NewFS(vfs.OS{}, FSConfig{Seed: 1, TornRename: 1})
	target := filepath.Join(dir, "data")
	if err := os.WriteFile(target, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ".data-tmp")
	if err := os.WriteFile(tmp, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := fsys.Rename(tmp, target)
	if !errors.Is(err, ErrTornRename) {
		t.Fatalf("rename error = %v, want ErrTornRename", err)
	}
	if raw, _ := os.ReadFile(target); string(raw) != "old" {
		t.Fatalf("target changed to %q despite torn rename", raw)
	}
	// The atomic-writer cleanup path calls Remove(tmp); the simulated
	// crash must suppress it once so the litter survives.
	if err := fsys.Remove(tmp); err != nil {
		t.Fatalf("suppressed remove returned %v", err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("stale temp litter should survive the crashed cleanup: %v", err)
	}
	// A later sweep (fresh intent) really deletes it.
	if err := fsys.Remove(tmp); err != nil {
		t.Fatalf("sweep remove: %v", err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("litter still present after sweep: %v", err)
	}
	if fsys.Stats.TornRenames.Load() != 1 {
		t.Fatalf("TornRenames stat = %d", fsys.Stats.TornRenames.Load())
	}
}

// TestFSSyncCorrupt: a lying fsync reports success and flips exactly
// one bit — only a read-back catches it.
func TestFSSyncCorrupt(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFS(vfs.OS{}, FSConfig{Seed: 5, SyncCorrupt: 1})
	path := filepath.Join(dir, "c.bin")
	want := []byte("the quick brown fox jumps over the lazy dog")
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(want); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("lying sync must report success, got %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range want {
		diff += popcount8(want[i] ^ got[i])
	}
	if diff != 1 {
		t.Fatalf("sync-corrupt flipped %d bits, want exactly 1", diff)
	}
	if fsys.Stats.SyncCorrupts.Load() != 1 {
		t.Fatalf("SyncCorrupts stat = %d", fsys.Stats.SyncCorrupts.Load())
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// TestFSReadAtOrderIndependent: ReadAt fault decisions key on the
// offset, so issue order does not change the schedule — the property
// that keeps the parallel block reader reproducible.
func TestFSReadAtOrderIndependent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.bin")
	if err := os.WriteFile(path, make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	offsets := []int64{0, 512, 1024, 1536, 2048, 2560, 3072, 3584}
	probe := func(order []int64) map[int64]bool {
		fsys := NewFS(vfs.OS{}, FSConfig{Seed: 99, ReadErr: 0.5})
		f, err := fsys.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		out := make(map[int64]bool)
		buf := make([]byte, 16)
		for _, off := range order {
			_, err := f.ReadAt(buf, off)
			out[off] = errors.Is(err, ErrInjectedIO)
		}
		return out
	}
	fwd := probe(offsets)
	rev := make([]int64, len(offsets))
	for i, off := range offsets {
		rev[len(offsets)-1-i] = off
	}
	bwd := probe(rev)
	anyFault := false
	for _, off := range offsets {
		if fwd[off] != bwd[off] {
			t.Fatalf("offset %d: fault %v forward but %v reversed", off, fwd[off], bwd[off])
		}
		anyFault = anyFault || fwd[off]
	}
	if !anyFault {
		t.Fatal("0.5 read-error rate injected nothing across 8 offsets")
	}
}

// TestFSValidate rejects out-of-range rates and negative quotas.
func TestFSValidate(t *testing.T) {
	bad := []FSConfig{
		{ReadErr: -0.1},
		{ShortWrite: 1.5},
		{Quota: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", cfg)
		}
	}
	good := FSConfig{Seed: 1, Quota: 10, ReadErr: 1, SyncFail: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected valid config: %v", err)
	}
	if !good.Active() {
		t.Error("Active() = false for a fault-bearing config")
	}
	var idle FSConfig
	if idle.Active() {
		t.Error("Active() = true for zero config")
	}
}

// TestFlipFileBitErrors: the hardened corruptor surfaces sync errors
// from the seam instead of dropping them.
func TestFlipFileBitErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bin")
	if err := os.WriteFile(path, []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Through a sync-failing seam the corruption must report the error.
	fsys := NewFS(vfs.OS{}, FSConfig{Seed: 3, SyncFail: 1})
	if _, err := FlipFileBitFS(fsys, path, 12345); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("FlipFileBitFS over failing sync: %v, want ErrInjectedIO", err)
	}
	// Plain seam still works and really flips a bit.
	before, _ := os.ReadFile(path)
	off, err := FlipFileBit(path, 12345)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(path)
	if before[off] == after[off] {
		t.Fatal("FlipFileBit did not damage the byte it reported")
	}
	// TruncateFileTailFS through the seam.
	n, err := TruncateFileTailFS(vfs.OS{}, path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(path); fi.Size() != n {
		t.Fatalf("truncated to %d, stat says %d", n, fi.Size())
	}
}
