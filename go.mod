module ixplens

go 1.22
