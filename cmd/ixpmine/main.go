// Command ixpmine analyses a capture directory written by ixpgen under
// the supervised campaign runner: it rebuilds the measurement
// substrates from the manifest (the world regenerates deterministically
// from its seed), then drives every study week through the
// capture→analyze→snapshot state machine with checkpointed resume —
// progress lands in an append-only journal next to the captures, so a
// killed run picks up from the last completed stage and a finished
// campaign re-runs as a verified no-op. Weeks written by ixpgen are
// adopted through their manifest digests, never rewritten; a damaged or
// missing week regenerates deterministically. Transient failures retry
// with exponential backoff under an optional per-stage watchdog;
// permanent ones (or an exhausted retry budget) quarantine the week,
// which downstream analysis carries as an explicit gap instead of
// failing the campaign.
//
// It prints the weekly summary plus a deep-dive for one focus week
// (filtering cascade, clustering, meta-data coverage, Fig. 7 link
// attribution). Every analyzer in the registry — identification,
// visibility, link flows — runs in the ONE decode pass over each
// capture; the deep-dive replays the persisted flow product instead of
// re-reading the capture file. -analyzers narrows the registry
// ("webserver,links"); "all" (the default) runs everything.
//
// A genuinely full disk parks the affected week in a capped-backoff
// wait (bounded by -storage-full-budget) instead of quarantining it.
// The -fault-fs-* flags route every campaign byte through a seeded
// fault-injecting filesystem — short writes, read errors, fsync lies,
// torn renames, an ENOSPC quota — for rehearsing exactly those paths.
//
// Usage:
//
//	ixpmine -in capture/ [-focus 45] [-analyzers all] [-retries 3] [-watchdog 5m] [-quarantine-limit 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ixplens/internal/analysis"
	"ixplens/internal/capture"
	"ixplens/internal/core/churn"
	"ixplens/internal/core/cluster"
	"ixplens/internal/core/metadata"
	"ixplens/internal/faultline"
	"ixplens/internal/obs"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/snapshot"
	"ixplens/internal/supervise"
	"ixplens/internal/vfs"
)

func main() {
	var (
		in      = flag.String("in", "capture", "capture directory written by ixpgen")
		focus   = flag.Int("focus", 45, "ISO week for the deep-dive analysis")
		maxLoss = flag.Float64("max-loss", 0, "fail a week when its estimated datagram loss fraction exceeds this (0 = no limit); failed weeks retry, then quarantine")
		debug   = flag.String("debug-addr", "", "serve expvar+pprof on this address and print a metrics snapshot at exit (empty = off)")
		retries = flag.Int("retries", 3, "per-week attempt budget; the week quarantines after this many failed attempts")
		wdog    = flag.Duration("watchdog", 0, "per-stage deadline; a stage exceeding it is cancelled and retried as a transient failure (0 = none)")
		qlimit  = flag.Int("quarantine-limit", 0, "abort the campaign when more than this many weeks are quarantined (0 = any number degrades, never aborts)")
		retryQ  = flag.Bool("retry-quarantined", false, "re-open weeks a previous run quarantined instead of skipping them")
		anlz    = flag.String("analyzers", "all", "comma-separated analyzer names to run in the fused pass (webserver is always included); \"all\" runs every registered analyzer")
		fullB   = flag.Int("storage-full-budget", 0, "how many storage-full waits one week may accumulate before ENOSPC fails the attempt normally (0 = wait indefinitely)")
		_       = flag.Bool("snapshots", true, "deprecated no-op: snapshots are always persisted — they are the supervisor's resume checkpoints")

		fsSeed        = flag.Uint64("fault-fs-seed", 1, "storage fault injection seed")
		fsQuota       = flag.Int64("fault-fs-quota", 0, "write-byte budget before injected ENOSPC (0 = unlimited)")
		fsShortWrite  = flag.Float64("fault-fs-short-write", 0, "probability a write is cut short")
		fsReadErr     = flag.Float64("fault-fs-read-err", 0, "probability a read fails with an injected I/O error")
		fsSyncFail    = flag.Float64("fault-fs-sync-fail", 0, "probability fsync fails")
		fsSyncCorrupt = flag.Float64("fault-fs-sync-corrupt", 0, "probability fsync reports success but flips one stored bit")
		fsTornRename  = flag.Float64("fault-fs-torn-rename", 0, "probability an atomic rename tears (crash before the rename)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	scfg := supervise.Config{
		Retries:           *retries,
		Watchdog:          *wdog,
		QuarantineLimit:   *qlimit,
		RetryQuarantined:  *retryQ,
		StorageFullBudget: *fullB,
	}
	fscfg := faultline.FSConfig{
		Seed:        *fsSeed,
		Quota:       *fsQuota,
		ShortWrite:  *fsShortWrite,
		ReadErr:     *fsReadErr,
		SyncFail:    *fsSyncFail,
		SyncCorrupt: *fsSyncCorrupt,
		TornRename:  *fsTornRename,
	}
	if err := fscfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ixpmine:", err)
		os.Exit(1)
	}
	if err := run(ctx, *in, *focus, *maxLoss, *debug, *anlz, scfg, fscfg); err != nil {
		fmt.Fprintln(os.Stderr, "ixpmine:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, dir string, focus int, maxLoss float64, debugAddr, analyzers string, scfg supervise.Config, fscfg faultline.FSConfig) error {
	man, err := capture.ReadManifest(dir)
	if err != nil {
		return err
	}
	env, err := man.Rebuild()
	if err != nil {
		return err
	}
	if fscfg.Active() {
		env.FS = faultline.NewFS(vfs.OS{}, fscfg)
		fmt.Fprintf(os.Stderr, "storage fault injection: quota=%d short-write=%.3f read-err=%.3f sync-fail=%.3f sync-corrupt=%.3f torn-rename=%.3f seed=%d\n",
			fscfg.Quota, fscfg.ShortWrite, fscfg.ReadErr, fscfg.SyncFail, fscfg.SyncCorrupt, fscfg.TornRename, fscfg.Seed)
	}
	if env.Analyzers, err = analysis.Select(analyzers); err != nil {
		return err
	}
	var reg *obs.Registry
	if debugAddr != "" {
		reg = obs.NewRegistry()
		addr, closeDebug, err := obs.Serve(debugAddr, reg)
		if err != nil {
			return err
		}
		defer closeDebug()
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/vars\n", addr)
		defer func() {
			fmt.Fprintln(os.Stderr, "\nmetrics snapshot:")
			reg.WriteText(os.Stderr)
		}()
	}
	env.Instrument(reg)
	env.MaxLoss = maxLoss
	fmt.Printf("substrates rebuilt: %s\n", env)
	if man.Anonymized {
		fmt.Println("note: capture is prefix-preserving anonymized; RIB/geo resolution is not meaningful")
	}
	fmt.Println()

	// The supervisor inherits the campaign's container identity so the
	// journal binds to the files ixpgen wrote.
	scfg.Capture.Compress = man.Compression
	sup, err := supervise.New(env, dir, scfg, reg)
	if err != nil {
		return err
	}
	defer sup.Close()

	tracker := churn.NewTrackerWith(env.EntityTable())
	var hookErr error
	fmt.Println("week  samples  peering%  servers  https  loss%  server-traffic-share")
	sup.Hooks.OnWeek = func(ws supervise.WeekStatus, snap *snapshot.Snapshot) {
		if hookErr != nil {
			return
		}
		if ws.Status == "quarantined" {
			hookErr = tracker.AddGap(ws.Week)
			fmt.Printf("%4d  QUARANTINED after %d attempt(s): %v\n", ws.Week, ws.Attempts, ws.Err)
			return
		}
		res, counts := snap.Result, snap.Counts
		if err := tracker.Add(env.Observation(res)); err != nil {
			hookErr = err
			return
		}
		https := 0
		for _, s := range res.Servers {
			if s.HTTPS {
				https++
			}
		}
		// ServerBytes sums per-endpoint totals, so a sample counts once
		// per server endpoint; machine-to-machine samples count twice,
		// making this a slight overestimate of the >70% paper figure.
		peerBytes := counts.PeeringTCPBytes + counts.PeeringUDPBytes
		share := 0.0
		if peerBytes > 0 {
			share = float64(res.ServerBytes) / float64(peerBytes)
			if share > 1 {
				share = 1
			}
		}
		fmt.Printf("%4d  %7d  %7.2f%%  %7d  %5d  %5.2f  %.1f%%\n",
			ws.Week, counts.Total, 100*counts.PeeringShare(), len(res.Servers), https, 100*res.EstLoss, 100*share)

		if ws.Week == focus {
			deepDive(env, snap, man.Anonymized)
		}
	}

	start := time.Now()
	rep, err := sup.Run(ctx)
	if err != nil {
		return err
	}
	if hookErr != nil {
		return hookErr
	}
	fmt.Printf("\nsupervised run: %d done (%d resumed), %d quarantined in %v\n",
		rep.Completed, rep.Resumed, rep.Quarantined, time.Since(start).Round(time.Millisecond))
	if q := rep.QuarantinedWeeks(); len(q) > 0 {
		fmt.Printf("quarantined weeks: %v — the longitudinal series below carries them as gaps\n", q)
	}

	weeks := tracker.Compute()
	for i := len(weeks) - 1; i >= 0; i-- {
		last := &weeks[i]
		if last.Gap {
			continue
		}
		fmt.Printf("\nlongitudinal (week %d, %d observed): stable %.1f%%, recurrent %.1f%%, new %.1f%%; stable pool carries %.1f%% of traffic\n",
			last.Week, last.ObservedWeeks, 100*last.Share(churn.PoolStable), 100*last.Share(churn.PoolRecurrent),
			100*last.Share(churn.PoolNew), 100*last.ByteShare(churn.PoolStable))
		return nil
	}
	fmt.Println("\nno weeks observed — every week quarantined")
	return nil
}

// deepDive prints the focus week's cascade, meta-data, clustering and
// the Fig. 7 link attribution for the big deploy-CDN — all from the
// week's snapshot, with no second pass over the capture file: the link
// attribution replays the snapshot's persisted flow product.
func deepDive(env *pipeline.Env, snap *snapshot.Snapshot, anonymized bool) {
	res, counts := snap.Result, snap.Counts
	fmt.Printf("\n--- deep dive, week %d ---\n", res.Week)
	fmt.Printf("cascade: %d total | %d non-IPv4 | %d local | %d non-TCP/UDP | %d peering (%.2f%% TCP bytes)\n",
		counts.Total, counts.NonIPv4, counts.Local, counts.NonTCPUDP, counts.Peering(), 100*counts.TCPShare())
	fmt.Printf("443 funnel: %d candidates -> %d responded -> %d valid\n",
		res.Candidates443, res.Responded443, res.Valid443)

	metas, cov := metadata.Collect(res, env.DNS)
	fmt.Printf("meta-data: DNS %.1f%%, URI %.1f%%, cert %.1f%%, any %.1f%% (of %d servers)\n",
		pct(cov.WithDNS, cov.Total), pct(cov.WithURI, cov.Total),
		pct(cov.WithCert, cov.Total), pct(cov.WithAny, cov.Total), cov.Total)

	opts := cluster.DefaultOptions()
	opts.KnownShared = env.DNS.PublicDNSProviders()
	opts.Entities = env.EntityTable()
	cl := cluster.Run(metas, opts)
	fmt.Printf("clustering: %d orgs; steps %.1f%% / %.1f%% / %.1f%%\n",
		len(cl.Clusters),
		100*cl.ClusteredShare(cluster.Step1),
		100*cl.ClusteredShare(cluster.Step2),
		100*cl.ClusteredShare(cluster.Step3))

	// Fig. 7: link attribution for the Akamai-analog cluster, replayed
	// from the snapshot's flow product — no second pass over the
	// capture file (skipped on anonymized data, whose addresses no
	// longer match the cluster evidence meaningfully; or when the links
	// analyzer was deselected).
	if !anonymized {
		w := env.World
		acme := w.Orgs[w.Special.AcmeCDN]
		c := cl.Clusters[acme.Domain]
		switch {
		case snap.Links == nil:
			fmt.Println("fig 7: links analyzer not in the registry — rerun without -analyzers narrowing")
		case c != nil:
			set := make(map[packet.IPv4Addr]bool, len(c.IPs))
			for _, ip := range c.IPs {
				set[ip] = true
			}
			ls := snap.Links.LinkStats(acme.HomeAS, env.EntityTable(), func(ip packet.IPv4Addr) bool { return set[ip] })
			fmt.Printf("fig 7 (%s): %.1f%% of traffic off the direct links; %d of %d servers only behind other members\n",
				acme.Name, 100*ls.OffLinkShare(), ls.ServersOnlyOffLink(),
				ls.ServersOnlyOffLink()+ls.NumDirectServers())
		}
	}
	fmt.Println("--- end deep dive ---")
	fmt.Println()
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
