// Command ixpmine analyses a capture directory written by ixpgen: it
// rebuilds the measurement substrates from the manifest (the world
// regenerates deterministically from its seed), dissects every weekly
// sFlow capture, identifies the Web servers, and prints the weekly
// summary plus a deep-dive for one focus week (filtering cascade,
// clustering, meta-data coverage).
//
// Usage:
//
//	ixpmine -in capture/ [-focus 45]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"ixplens/internal/capture"
	"ixplens/internal/core/churn"
	"ixplens/internal/core/cluster"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/hetero"
	"ixplens/internal/core/metadata"
	"ixplens/internal/core/webserver"
	"ixplens/internal/obs"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/snapshot"
)

func main() {
	var (
		in      = flag.String("in", "capture", "capture directory written by ixpgen")
		focus   = flag.Int("focus", 45, "ISO week for the deep-dive analysis")
		maxLoss = flag.Float64("max-loss", 0, "abort when a week's estimated datagram loss fraction exceeds this (0 = no limit)")
		debug   = flag.String("debug-addr", "", "serve expvar+pprof on this address and print a metrics snapshot at exit (empty = off)")
		snaps   = flag.Bool("snapshots", false, "persist each analyzed week as a snapshot next to its capture, so ixpserve can reload it without re-analyzing")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *in, *focus, *maxLoss, *debug, *snaps); err != nil {
		fmt.Fprintln(os.Stderr, "ixpmine:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, dir string, focus int, maxLoss float64, debugAddr string, writeSnaps bool) error {
	man, err := capture.ReadManifest(dir)
	if err != nil {
		return err
	}
	env, err := man.Rebuild()
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if debugAddr != "" {
		reg = obs.NewRegistry()
		addr, closeDebug, err := obs.Serve(debugAddr, reg)
		if err != nil {
			return err
		}
		defer closeDebug()
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/vars\n", addr)
		defer func() {
			fmt.Fprintln(os.Stderr, "\nmetrics snapshot:")
			reg.WriteText(os.Stderr)
		}()
	}
	env.Instrument(reg)
	env.MaxLoss = maxLoss
	fmt.Printf("substrates rebuilt: %s\n", env)
	if man.Anonymized {
		fmt.Println("note: capture is prefix-preserving anonymized; RIB/geo resolution is not meaningful")
	}
	fmt.Println()

	tracker := churn.NewTrackerWith(env.EntityTable())
	fmt.Println("week  samples  peering%  servers  https  loss%  server-traffic-share")
	for i, wk := range man.Weeks {
		res, counts, err := capture.AnalyzeWeekFile(ctx, env, filepath.Join(dir, man.Files[i]), wk)
		if err != nil {
			return fmt.Errorf("week %d: %w", wk, err)
		}
		if err := tracker.Add(env.Observation(res)); err != nil {
			return err
		}
		if writeSnaps {
			digest := ""
			if i < len(man.Digests) {
				digest = man.Digests[i]
			}
			snap := &snapshot.Snapshot{Result: res, Counts: counts, SourceDigest: digest}
			if err := snapshot.SaveFile(filepath.Join(dir, snapshot.FileName(wk)), snap); err != nil {
				return fmt.Errorf("week %d: write snapshot: %w", wk, err)
			}
		}
		https := 0
		for _, s := range res.Servers {
			if s.HTTPS {
				https++
			}
		}
		// ServerBytes sums per-endpoint totals, so a sample counts once
		// per server endpoint; machine-to-machine samples count twice,
		// making this a slight overestimate of the >70% paper figure.
		peerBytes := counts.PeeringTCPBytes + counts.PeeringUDPBytes
		share := 0.0
		if peerBytes > 0 {
			share = float64(res.ServerBytes) / float64(peerBytes)
			if share > 1 {
				share = 1
			}
		}
		fmt.Printf("%4d  %7d  %7.2f%%  %7d  %5d  %5.2f  %.1f%%\n",
			wk, counts.Total, 100*counts.PeeringShare(), len(res.Servers), https, 100*res.EstLoss, 100*share)

		if wk == focus {
			deepDive(env, res, counts, filepath.Join(dir, man.Files[i]), man.Anonymized)
		}
	}

	weeks := tracker.Compute()
	last := weeks[len(weeks)-1]
	fmt.Printf("\nlongitudinal (week %d): stable %.1f%%, recurrent %.1f%%, new %.1f%%; stable pool carries %.1f%% of traffic\n",
		last.Week, 100*last.Share(churn.PoolStable), 100*last.Share(churn.PoolRecurrent),
		100*last.Share(churn.PoolNew), 100*last.ByteShare(churn.PoolStable))
	return nil
}

// deepDive prints the focus week's cascade, meta-data, clustering and
// the Fig. 7 link attribution for the big deploy-CDN.
func deepDive(env *pipeline.Env, res *webserver.Result, counts dissect.Counts, path string, anonymized bool) {
	fmt.Printf("\n--- deep dive, week %d ---\n", res.Week)
	fmt.Printf("cascade: %d total | %d non-IPv4 | %d local | %d non-TCP/UDP | %d peering (%.2f%% TCP bytes)\n",
		counts.Total, counts.NonIPv4, counts.Local, counts.NonTCPUDP, counts.Peering(), 100*counts.TCPShare())
	fmt.Printf("443 funnel: %d candidates -> %d responded -> %d valid\n",
		res.Candidates443, res.Responded443, res.Valid443)

	metas, cov := metadata.Collect(res, env.DNS)
	fmt.Printf("meta-data: DNS %.1f%%, URI %.1f%%, cert %.1f%%, any %.1f%% (of %d servers)\n",
		pct(cov.WithDNS, cov.Total), pct(cov.WithURI, cov.Total),
		pct(cov.WithCert, cov.Total), pct(cov.WithAny, cov.Total), cov.Total)

	opts := cluster.DefaultOptions()
	opts.KnownShared = env.DNS.PublicDNSProviders()
	opts.Entities = env.EntityTable()
	cl := cluster.Run(metas, opts)
	fmt.Printf("clustering: %d orgs; steps %.1f%% / %.1f%% / %.1f%%\n",
		len(cl.Clusters),
		100*cl.ClusteredShare(cluster.Step1),
		100*cl.ClusteredShare(cluster.Step2),
		100*cl.ClusteredShare(cluster.Step3))

	// Fig. 7: link attribution for the Akamai-analog cluster (needs a
	// second pass over the capture; skipped on anonymized data, whose
	// addresses no longer match the cluster evidence meaningfully).
	if !anonymized {
		w := env.World
		acme := w.Orgs[w.Special.AcmeCDN]
		if c := cl.Clusters[acme.Domain]; c != nil {
			set := make(map[packet.IPv4Addr]bool, len(c.IPs))
			for _, ip := range c.IPs {
				set[ip] = true
			}
			// FileSource sniffs the container format, so the second pass
			// works on v1 and v2 (block) captures alike.
			if src, err := pipeline.OpenFileSource(path); err == nil {
				ls := hetero.NewLinkStatsWith(acme.HomeAS, env.EntityTable())
				_ = hetero.Attribute(src, env.Fabric, ls, func(ip packet.IPv4Addr) bool { return set[ip] })
				fmt.Printf("fig 7 (%s): %.1f%% of traffic off the direct links; %d of %d servers only behind other members\n",
					acme.Name, 100*ls.OffLinkShare(), ls.ServersOnlyOffLink(),
					ls.ServersOnlyOffLink()+ls.NumDirectServers())
				if err := src.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "ixpmine: close %s: %v\n", path, err)
				}
			}
		}
	}
	fmt.Println("--- end deep dive ---")
	fmt.Println()
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
