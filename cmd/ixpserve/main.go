// Command ixpserve serves an analyzed measurement campaign over HTTP:
// it rebuilds the measurement substrates from the capture manifest and
// answers per-week summary, top-k server/AS, visibility
// (/week/{n}/visibility), peering-link flow (/week/{n}/links) and
// longitudinal churn queries. Weeks are analyzed lazily on first
// request — from the on-disk snapshot when one exists and carries every
// product the analyzer registry requires (ixpmine -snapshots, or
// -write-snapshots here), from the raw capture otherwise — behind a
// bounded in-memory cache with single-flight deduplication, a
// per-request timeout, and load shedding past the in-flight limit. A
// week mined under a narrowed registry answers 404 for the missing
// products instead of recomputing them.
//
// Usage:
//
//	ixpserve -in capture/ [-addr :8437] [-write-snapshots]
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, open
// requests finish (bounded by -drain), and in-flight analyses are
// cancelled and awaited.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ixplens/internal/capture"
	"ixplens/internal/obs"
	"ixplens/internal/serve"
	"ixplens/internal/supervise"
)

func main() {
	var (
		in         = flag.String("in", "capture", "capture directory written by ixpgen")
		addr       = flag.String("addr", ":8437", "HTTP listen address")
		debug      = flag.String("debug-addr", "", "serve expvar+pprof on this address (empty = off)")
		maxLoss    = flag.Float64("max-loss", 0, "fail a week's analysis when its estimated datagram loss fraction exceeds this (0 = no limit)")
		cacheWeeks = flag.Int("cache-weeks", 32, "maximum analyzed weeks held in memory")
		inflight   = flag.Int("max-inflight", 64, "maximum concurrently handled requests; excess load is shed with 503")
		timeout    = flag.Duration("timeout", 2*time.Minute, "per-request deadline, including any analysis it triggers (negative = none)")
		topk       = flag.Int("topk", 10, "default k for the top-k endpoints")
		writeSnaps = flag.Bool("write-snapshots", false, "persist a snapshot after each full analysis, so later requests (and restarts) skip it")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown budget for open requests")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *in, *addr, *debug, *maxLoss, serve.Config{
		CacheWeeks:  *cacheWeeks,
		MaxInFlight: *inflight,
		Timeout:     *timeout,
		TopK:        *topk,
	}, *writeSnaps, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "ixpserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, dir, addr, debugAddr string, maxLoss float64, cfg serve.Config, writeSnaps bool, drain time.Duration) error {
	man, err := capture.ReadManifest(dir)
	if err != nil {
		return err
	}
	env, err := man.Rebuild()
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	if debugAddr != "" {
		dbgAddr, closeDebug, err := obs.Serve(debugAddr, reg)
		if err != nil {
			return err
		}
		defer closeDebug()
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/vars\n", dbgAddr)
	}
	env.Instrument(reg)
	env.MaxLoss = maxLoss
	fmt.Fprintf(os.Stderr, "substrates rebuilt: %s\n", env)

	store := serve.NewStore(dir, env, man, writeSnaps)
	// A supervise journal in the campaign directory marks weeks the
	// runner quarantined: serve them as explicit holes (422, /healthz
	// degraded, /churn gap rows) rather than re-analyzing bad data.
	if jst, err := supervise.ReadState(dir); err == nil {
		if q := jst.QuarantinedWeeks(); len(q) > 0 {
			store.SetQuarantined(q)
			fmt.Fprintf(os.Stderr, "degraded campaign: weeks %v quarantined by the supervisor\n", q)
		}
	}
	s := serve.New(store, cfg, reg)
	defer s.Close()

	srv := &http.Server{Addr: addr, Handler: s}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "serving %d weeks from %s on %s\n", len(man.Weeks), dir, addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let open requests finish within
	// the budget, then cancel whatever analyses are still running (the
	// deferred s.Close waits for them).
	fmt.Fprintln(os.Stderr, "shutting down...")
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
