// Command ixpgen generates a synthetic IXP measurement campaign to
// disk: one sFlow capture file per weekly snapshot plus a manifest that
// records the world configuration, so cmd/ixpmine can deterministically
// rebuild the measurement substrates (RIB, geo DB, DNS, certificates)
// and analyse the captures.
//
// Usage:
//
//	ixpgen [-scale 0.01] [-samples 60000] [-seed 1] -out capture/
//	ixpgen [-scale ...] -compress -out capture/    # DEFLATE-compressed blocks
//	ixpgen [-scale ...] -resume -out capture/      # pick up an interrupted run
//	ixpgen [-scale ...] -udp 127.0.0.1:6343    # export over sFlow's UDP transport
//	ixpgen [-scale ...] -fault-drop 0.05 -fault-corrupt 0.02 -out degraded/
//
// Captures are written in the checksummed v2 block container; -resume
// skips weeks whose files still verify against the manifest's digests,
// so an aborted campaign continues instead of starting over. The
// -fault-* flags write a deterministically degraded campaign (dropped,
// duplicated, reordered and corrupted datagrams), for exercising the
// analysis pipeline's loss accounting and robustness. The -fault-fs-*
// flags instead degrade the storage layer itself (short writes, fsync
// lies, torn renames, a write-byte quota that simulates ENOSPC) — the
// campaign's disk paths must survive them or fail loudly. SIGINT/SIGTERM
// abort generation cleanly mid-week.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ixplens/internal/capture"
	"ixplens/internal/faultline"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/pipeline"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
	"ixplens/internal/vfs"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.01, "fraction of the paper's world size")
		samples  = flag.Int("samples", 60_000, "sFlow samples generated per week")
		seed     = flag.Int64("seed", 1, "world generation seed")
		out      = flag.String("out", "capture", "output directory")
		udp      = flag.String("udp", "", "export over UDP to this collector address instead of writing files")
		anonKey  = flag.Uint64("anonkey", 0, "prefix-preserving anonymization key (0 = no anonymization)")
		compress = flag.Bool("compress", false, "DEFLATE-compress capture blocks")
		resume   = flag.Bool("resume", false, "skip weeks already written and verified against the manifest digests")

		faultDrop    = flag.Float64("fault-drop", 0, "fraction of datagrams to drop (deterministic fault injection)")
		faultDup     = flag.Float64("fault-dup", 0, "fraction of datagrams to duplicate")
		faultReorder = flag.Float64("fault-reorder", 0, "fraction of datagrams to delay by one position")
		faultCorrupt = flag.Float64("fault-corrupt", 0, "fraction of datagrams to corrupt (half truncated, half bit-flipped)")
		faultSeed    = flag.Uint64("fault-seed", 1, "fault injection seed")

		fsSeed        = flag.Uint64("fault-fs-seed", 1, "storage fault injection seed")
		fsQuota       = flag.Int64("fault-fs-quota", 0, "write-byte budget before injected ENOSPC (0 = unlimited)")
		fsShortWrite  = flag.Float64("fault-fs-short-write", 0, "probability a write is cut short")
		fsReadErr     = flag.Float64("fault-fs-read-err", 0, "probability a read fails with an injected I/O error")
		fsSyncFail    = flag.Float64("fault-fs-sync-fail", 0, "probability fsync fails")
		fsSyncCorrupt = flag.Float64("fault-fs-sync-corrupt", 0, "probability fsync reports success but flips one stored bit")
		fsTornRename  = flag.Float64("fault-fs-torn-rename", 0, "probability an atomic rename tears (crash before the rename)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := netmodel.PaperScale(*scale)
	cfg.Seed = *seed
	opts := traffic.Options{SamplesPerWeek: *samples, SamplingRate: 16384, SnapLen: 128}

	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		fatal(err)
	}
	if *faultDrop > 0 || *faultDup > 0 || *faultReorder > 0 || *faultCorrupt > 0 {
		env.Faults = &faultline.Config{
			Seed:      *faultSeed,
			Drop:      *faultDrop,
			Duplicate: *faultDup,
			Reorder:   *faultReorder,
			Truncate:  *faultCorrupt / 2,
			BitFlip:   *faultCorrupt / 2,
		}
		if err := env.Faults.Validate(); err != nil {
			fatal(err)
		}
		fmt.Printf("fault injection: drop=%.3f dup=%.3f reorder=%.3f corrupt=%.3f seed=%d\n",
			*faultDrop, *faultDup, *faultReorder, *faultCorrupt, *faultSeed)
	}
	fscfg := faultline.FSConfig{
		Seed:        *fsSeed,
		Quota:       *fsQuota,
		ShortWrite:  *fsShortWrite,
		ReadErr:     *fsReadErr,
		SyncFail:    *fsSyncFail,
		SyncCorrupt: *fsSyncCorrupt,
		TornRename:  *fsTornRename,
	}
	if fscfg.Active() {
		if err := fscfg.Validate(); err != nil {
			fatal(err)
		}
		env.FS = faultline.NewFS(vfs.OS{}, fscfg)
		fmt.Printf("storage fault injection: quota=%d short-write=%.3f read-err=%.3f sync-fail=%.3f sync-corrupt=%.3f torn-rename=%.3f seed=%d\n",
			*fsQuota, *fsShortWrite, *fsReadErr, *fsSyncFail, *fsSyncCorrupt, *fsTornRename, *fsSeed)
	}
	fmt.Printf("world: %s\n", env)

	t0 := time.Now()
	if *udp != "" {
		if err := exportUDP(ctx, env, *udp); err != nil {
			fatal(err)
		}
		fmt.Printf("exported %d weeks over UDP in %v\n", cfg.Weeks, time.Since(t0))
		return
	}
	counts, err := capture.WriteCampaignOpts(ctx, env, *out, capture.WriteOptions{
		Compress:  *compress,
		Resume:    *resume,
		Anonymize: *anonKey != 0,
		AnonKey:   *anonKey,
	})
	if err != nil {
		fatal(err)
	}
	for i, n := range counts {
		fmt.Printf("  %s: %d datagrams\n", capture.WeekFile(cfg.FirstWeek+i), n)
	}
	fmt.Printf("wrote %d weeks to %s in %v\n", len(counts), *out, time.Since(t0))
}

// exportUDP ships every week's datagrams to a live collector over
// sFlow's native transport. Cancelling ctx aborts within one datagram.
func exportUDP(ctx context.Context, env *pipeline.Env, addr string) (err error) {
	exp, err := sflow.NewExporter(addr)
	if err != nil {
		return err
	}
	// A close failure means the tail of the export may never have left
	// the socket buffer; it must not be swallowed on the success path.
	defer func() {
		if cerr := exp.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	send := func(d *sflow.Datagram) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return exp.Send(d)
	}
	cfg := &env.World.Cfg
	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		sink := send
		var inj *faultline.Injector
		if env.Faults.Active() {
			inj = faultline.New(*env.Faults, uint64(wk))
			sink = inj.Sink(send)
		}
		col := ixp.NewCollector(env.Fabric, env.Opts.SamplingRate, sink)
		if _, err := env.Gen.GenerateWeek(wk, col); err != nil {
			return fmt.Errorf("week %d: %w", wk, err)
		}
		if inj != nil {
			if err := inj.Flush(send); err != nil {
				return fmt.Errorf("week %d: %w", wk, err)
			}
		}
		fmt.Printf("  week %d exported (%d datagrams total, %d send retries)\n", wk, exp.Count(), exp.Retries())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ixpgen:", err)
	os.Exit(1)
}
