// Command ixpgen generates a synthetic IXP measurement campaign to
// disk: one sFlow capture file per weekly snapshot plus a manifest that
// records the world configuration, so cmd/ixpmine can deterministically
// rebuild the measurement substrates (RIB, geo DB, DNS, certificates)
// and analyse the captures.
//
// Usage:
//
//	ixpgen [-scale 0.01] [-samples 60000] [-seed 1] -out capture/
//	ixpgen [-scale ...] -udp 127.0.0.1:6343    # export over sFlow's UDP transport
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ixplens/internal/capture"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/pipeline"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.01, "fraction of the paper's world size")
		samples = flag.Int("samples", 60_000, "sFlow samples generated per week")
		seed    = flag.Int64("seed", 1, "world generation seed")
		out     = flag.String("out", "capture", "output directory")
		udp     = flag.String("udp", "", "export over UDP to this collector address instead of writing files")
		anonKey = flag.Uint64("anonkey", 0, "prefix-preserving anonymization key (0 = no anonymization)")
	)
	flag.Parse()

	cfg := netmodel.PaperScale(*scale)
	cfg.Seed = *seed
	opts := traffic.Options{SamplesPerWeek: *samples, SamplingRate: 16384, SnapLen: 128}

	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("world: %s\n", env)

	t0 := time.Now()
	if *udp != "" {
		if err := exportUDP(env, *udp); err != nil {
			fatal(err)
		}
		fmt.Printf("exported %d weeks over UDP in %v\n", cfg.Weeks, time.Since(t0))
		return
	}
	var counts []int
	if *anonKey != 0 {
		counts, err = capture.WriteCampaignAnonymized(env, *out, *anonKey)
	} else {
		counts, err = capture.WriteCampaign(env, *out)
	}
	if err != nil {
		fatal(err)
	}
	for i, n := range counts {
		fmt.Printf("  %s: %d datagrams\n", capture.WeekFile(cfg.FirstWeek+i), n)
	}
	fmt.Printf("wrote %d weeks to %s in %v\n", len(counts), *out, time.Since(t0))
}

// exportUDP ships every week's datagrams to a live collector over
// sFlow's native transport.
func exportUDP(env *pipeline.Env, addr string) error {
	exp, err := sflow.NewExporter(addr)
	if err != nil {
		return err
	}
	defer exp.Close()
	cfg := &env.World.Cfg
	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		col := ixp.NewCollector(env.Fabric, env.Opts.SamplingRate, exp.Send)
		if _, err := env.Gen.GenerateWeek(wk, col); err != nil {
			return fmt.Errorf("week %d: %w", wk, err)
		}
		fmt.Printf("  week %d exported (%d datagrams total)\n", wk, exp.Count())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ixpgen:", err)
	os.Exit(1)
}
