// Command ixpreport regenerates every table and figure of the paper:
// it builds a synthetic world at the requested scale, runs the full
// measurement pipeline over 17 weeks of generated sFlow traffic, and
// prints paper-value vs measured-value rows for experiments E1-E21
// (see DESIGN.md for the index).
//
// Usage:
//
//	ixpreport [-scale 0.01] [-samples 60000] [-seed 1] [-only E4,E16] [-series]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"ixplens/internal/experiments"
	"ixplens/internal/netmodel"
	"ixplens/internal/obs"
	"ixplens/internal/textplot"
	"ixplens/internal/traffic"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.01, "fraction of the paper's world size (1.0 = full scale)")
		samples = flag.Int("samples", 60_000, "sFlow samples generated per week")
		seed    = flag.Int64("seed", 1, "world generation seed")
		only    = flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
		series  = flag.Bool("series", false, "also print raw figure series")
		asJSON  = flag.Bool("json", false, "emit the reports as JSON instead of tables")
		asMD    = flag.Bool("md", false, "emit the reports as Markdown sections")
		maxLoss = flag.Float64("max-loss", 0, "abort when a week's estimated datagram loss fraction exceeds this (0 = no limit)")
		debug   = flag.String("debug-addr", "", "serve expvar+pprof on this address and print a metrics snapshot at exit (empty = off)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reg *obs.Registry
	if *debug != "" {
		reg = obs.NewRegistry()
		addr, closeDebug, err := obs.Serve(*debug, reg)
		if err != nil {
			fatal(err)
		}
		defer closeDebug()
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/vars\n", addr)
		defer func() {
			fmt.Fprintln(os.Stderr, "\nmetrics snapshot:")
			reg.WriteText(os.Stderr)
		}()
	}

	cfg := netmodel.PaperScale(*scale)
	cfg.Seed = *seed
	opts := traffic.Options{SamplesPerWeek: *samples, SamplingRate: 16384, SnapLen: 128}

	fmt.Fprintf(os.Stderr, "ixplens report — scale %.3f, %d samples/week, seed %d\n", *scale, *samples, *seed)
	t0 := time.Now()
	runner, err := experiments.New(cfg, opts)
	if err != nil {
		fatal(err)
	}
	runner.Env.Instrument(reg)
	runner.Env.MaxLoss = *maxLoss
	runner.SetContext(ctx)
	fmt.Fprintf(os.Stderr, "world: %s (generated in %v)\n\n", runner.Env, time.Since(t0))

	t0 = time.Now()
	reports, err := runner.All()
	if err != nil {
		fatal(err)
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[strings.ToUpper(id)] = true
		}
	}
	if *asJSON {
		var out []experiments.Report
		for _, rep := range reports {
			if len(selected) > 0 && !selected[rep.ID] {
				continue
			}
			out = append(out, rep)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	for _, rep := range reports {
		if len(selected) > 0 && !selected[rep.ID] {
			continue
		}
		if *asMD {
			fmt.Println(rep.Markdown())
			continue
		}
		fmt.Println(rep.String())
		if *series {
			printSeries(&rep)
		}
	}
	fmt.Fprintf(os.Stderr, "completed %d experiments in %v\n", len(reports), time.Since(t0))
}

// printSeries renders a report's figure series as text plots: paired
// x/y series become log-log scatters (the Fig. 6/7 clouds), everything
// else a sparkline.
func printSeries(rep *experiments.Report) {
	// Known scatter pairs by series names.
	pairs := [][2]string{
		{"servers", "ases"}, {"servers", "orgs"}, {"direct-share", "traffic-share"},
	}
	used := map[string]bool{}
	for _, p := range pairs {
		xs, ys := rep.Series[p[0]], rep.Series[p[1]]
		if len(xs) > 0 && len(xs) == len(ys) {
			fmt.Printf("  scatter %s vs %s:\n%s\n", p[1], p[0], textplot.ScatterLogLog(xs, ys, 48, 10))
			used[p[0]], used[p[1]] = true, true
		}
	}
	names := make([]string, 0, len(rep.Series))
	for name := range rep.Series {
		if !used[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  series %-22s %s\n", name, textplot.Curve(rep.Series[name], 40))
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ixpreport:", err)
	os.Exit(1)
}
