// Command ixpcollect is a minimal sFlow collector: it listens on UDP
// (the protocol's native transport, port 6343 by default), decodes
// incoming datagrams, and appends them to a capture stream file that
// cmd/ixpmine-style tooling can analyse. It stops after -count
// datagrams, after -for duration, or on SIGINT/SIGTERM.
//
// Pair it with the generator:
//
//	ixpcollect -listen 127.0.0.1:6343 -out week.sflow -count 10000 &
//	ixpgen -udp 127.0.0.1:6343 -scale 0.002 -samples 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ixplens/internal/obs"
	"ixplens/internal/sflow"
)

func main() {
	var (
		listen = flag.String("listen", fmt.Sprintf("127.0.0.1:%d", sflow.DefaultPort), "UDP address to listen on")
		out    = flag.String("out", "collected.sflow", "capture stream file to write")
		count  = flag.Int("count", 0, "stop after this many datagrams (0 = unlimited)")
		dur    = flag.Duration("for", 0, "stop after this duration (0 = unlimited)")
		every  = flag.Int("flush-every", 1024, "flush the stream file every N datagrams (0 = only at exit)")
		debug  = flag.String("debug-addr", "", "serve expvar+pprof on this address and print a metrics snapshot at exit (empty = off)")
	)
	flag.Parse()
	if err := run(*listen, *out, *count, *dur, *every, *debug); err != nil {
		fmt.Fprintln(os.Stderr, "ixpcollect:", err)
		os.Exit(1)
	}
}

func run(listen, out string, count int, dur time.Duration, flushEvery int, debugAddr string) error {
	var reg *obs.Registry
	if debugAddr != "" {
		reg = obs.NewRegistry()
		addr, closeDebug, err := obs.Serve(debugAddr, reg)
		if err != nil {
			return err
		}
		defer closeDebug()
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/vars\n", addr)
		defer func() {
			fmt.Fprintln(os.Stderr, "\nmetrics snapshot:")
			reg.WriteText(os.Stderr)
		}()
	}
	// Counter/histogram methods are nil-safe, so an uninstrumented run
	// (nil registry) pays only the no-op calls.
	var (
		mWritten    = reg.Counter("collect_datagrams_written_total")
		mFlows      = reg.Counter("collect_flow_samples_total")
		mFlushes    = reg.Counter("collect_file_flushes_total")
		mDgramFlows = reg.Histogram("collect_datagram_flows")
	)

	recv, err := sflow.NewReceiver(listen)
	if err != nil {
		return err
	}
	defer recv.Close()

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	sw, err := sflow.NewStreamWriter(f)
	if err != nil {
		return err
	}

	// Stop on signal or timer by closing the socket; Run then returns.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	if dur > 0 {
		go func() {
			select {
			case <-time.After(dur):
				recv.Close()
			case <-sigCh:
				recv.Close()
			}
		}()
	} else {
		go func() {
			<-sigCh
			recv.Close()
		}()
	}

	fmt.Printf("listening on %s, writing %s\n", recv.Addr(), out)
	written := 0
	err = recv.Run(func(d *sflow.Datagram) error {
		if err := sw.WriteDatagram(d); err != nil {
			return err
		}
		written++
		mWritten.Inc()
		mFlows.Add(uint64(len(d.Flows)))
		mDgramFlows.Observe(uint64(len(d.Flows)))
		// Periodic flushes bound how much a crash or kill -9 can lose on
		// a long-running collection.
		if flushEvery > 0 && written%flushEvery == 0 {
			if err := sw.Flush(); err != nil {
				return err
			}
			mFlushes.Inc()
		}
		if count > 0 && written >= count {
			return errDone
		}
		return nil
	})
	if err != nil && err != errDone {
		return err
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	received, malformed := recv.Stats()
	fmt.Printf("wrote %d datagrams (%d received, %d malformed)\n", written, received, malformed)
	return f.Sync()
}

// errDone signals the requested datagram count was reached.
var errDone = fmt.Errorf("done")
