// Command ixpcollect is a minimal sFlow collector: it listens on UDP
// (the protocol's native transport, port 6343 by default), decodes
// incoming datagrams, and appends them to a checksummed v2 block
// capture file that cmd/ixpmine-style tooling can analyse. It stops
// after -count datagrams, after -for duration, or on SIGINT/SIGTERM.
//
// Pair it with the generator:
//
//	ixpcollect -listen 127.0.0.1:6343 -out week.sflow -count 10000 &
//	ixpgen -udp 127.0.0.1:6343 -scale 0.002 -samples 10000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ixplens/internal/obs"
	"ixplens/internal/sflow"
)

func main() {
	var (
		listen   = flag.String("listen", fmt.Sprintf("127.0.0.1:%d", sflow.DefaultPort), "UDP address to listen on")
		out      = flag.String("out", "collected.sflow", "capture stream file to write")
		count    = flag.Int("count", 0, "stop after this many datagrams (0 = unlimited)")
		dur      = flag.Duration("for", 0, "stop after this duration (0 = unlimited)")
		every    = flag.Int("flush-every", 1024, "seal and flush a capture block every N datagrams (0 = only at exit)")
		compress = flag.Bool("compress", false, "DEFLATE-compress capture blocks")
		maxLoss  = flag.Float64("max-loss", 0, "abort when the estimated datagram loss fraction exceeds this (0 = no limit; checked every 256 datagrams)")
		debug    = flag.String("debug-addr", "", "serve expvar+pprof on this address and print a metrics snapshot at exit (empty = off)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *dur > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *dur)
		defer cancel()
	}

	if err := run(ctx, *listen, *out, *count, *maxLoss, *every, *compress, *debug); err != nil {
		fmt.Fprintln(os.Stderr, "ixpcollect:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, listen, out string, count int, maxLoss float64, flushEvery int, compress bool, debugAddr string) error {
	var reg *obs.Registry
	if debugAddr != "" {
		reg = obs.NewRegistry()
		addr, closeDebug, err := obs.Serve(debugAddr, reg)
		if err != nil {
			return err
		}
		defer closeDebug()
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/vars\n", addr)
		defer func() {
			fmt.Fprintln(os.Stderr, "\nmetrics snapshot:")
			reg.WriteText(os.Stderr)
		}()
	}
	// Counter/histogram methods are nil-safe, so an uninstrumented run
	// (nil registry) pays only the no-op calls.
	var (
		mWritten    = reg.Counter("collect_datagrams_written_total")
		mFlows      = reg.Counter("collect_flow_samples_total")
		mFlushes    = reg.Counter("collect_file_flushes_total")
		mDgramFlows = reg.Histogram("collect_datagram_flows")
	)

	recv, err := sflow.NewReceiver(listen)
	if err != nil {
		return err
	}
	defer recv.Close()

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	sw, err := sflow.NewBlockWriter(f, compress)
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM or the -for timer cancel ctx; RunContext notices
	// within one read-deadline tick and returns cleanly.
	fmt.Printf("listening on %s, writing %s\n", recv.Addr(), out)
	written := 0
	err = recv.RunContext(ctx, func(d *sflow.Datagram) error {
		if err := sw.WriteDatagram(d); err != nil {
			return err
		}
		written++
		mWritten.Inc()
		mFlows.Add(uint64(len(d.Flows)))
		mDgramFlows.Observe(uint64(len(d.Flows)))
		// Periodic flushes bound how much a crash or kill -9 can lose on
		// a long-running collection.
		if flushEvery > 0 && written%flushEvery == 0 {
			if err := sw.Flush(); err != nil {
				return err
			}
			mFlushes.Inc()
		}
		// The per-agent sequence trackers estimate transport loss as it
		// happens; past -max-loss the collection is not worth continuing.
		if maxLoss > 0 && written%256 == 0 {
			if est := recv.EstLoss(); est > maxLoss {
				return fmt.Errorf("estimated datagram loss %.4f > max %.4f: %w",
					est, maxLoss, errLossExceeded)
			}
		}
		if count > 0 && written >= count {
			return errDone
		}
		return nil
	})
	if err != nil && err != errDone && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// Close seals the final block and writes the footer index, so the
	// file gets the fast parallel-decode path at analysis time. A kill
	// before this point leaves a footerless capture, which readers
	// degrade to a sequential scan of the intact blocks.
	if err := sw.Close(); err != nil {
		return err
	}
	received, malformed := recv.Stats()
	st := recv.SeqStats()
	fmt.Printf("wrote %d datagrams (%d received, %d malformed)\n", written, received, malformed)
	fmt.Printf("transport quality: %d seq gaps, %d dups, %d reordered, est loss %.2f%%, %d queue drops\n",
		st.GapDatagrams, st.Duplicates, st.Reordered, 100*st.EstLoss(), recv.QueueDrops())
	if err := f.Sync(); err != nil {
		return err
	}
	// The deferred Close above only backstops early error returns; the
	// close that seals a successful collection is checked — a full disk
	// can surface the write-back failure here, and a capture that did
	// not make it to disk must not exit 0.
	return f.Close()
}

// errDone signals the requested datagram count was reached.
var errDone = fmt.Errorf("done")

// errLossExceeded aborts a collection whose transport is too lossy.
var errLossExceeded = fmt.Errorf("loss threshold exceeded")
