// Command ixpcollect is a minimal sFlow collector: it listens on UDP
// (the protocol's native transport, port 6343 by default), decodes
// incoming datagrams, and appends them to a capture stream file that
// cmd/ixpmine-style tooling can analyse. It stops after -count
// datagrams, after -for duration, or on SIGINT/SIGTERM.
//
// Pair it with the generator:
//
//	ixpcollect -listen 127.0.0.1:6343 -out week.sflow -count 10000 &
//	ixpgen -udp 127.0.0.1:6343 -scale 0.002 -samples 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ixplens/internal/sflow"
)

func main() {
	var (
		listen = flag.String("listen", fmt.Sprintf("127.0.0.1:%d", sflow.DefaultPort), "UDP address to listen on")
		out    = flag.String("out", "collected.sflow", "capture stream file to write")
		count  = flag.Int("count", 0, "stop after this many datagrams (0 = unlimited)")
		dur    = flag.Duration("for", 0, "stop after this duration (0 = unlimited)")
		every  = flag.Int("flush-every", 1024, "flush the stream file every N datagrams (0 = only at exit)")
	)
	flag.Parse()
	if err := run(*listen, *out, *count, *dur, *every); err != nil {
		fmt.Fprintln(os.Stderr, "ixpcollect:", err)
		os.Exit(1)
	}
}

func run(listen, out string, count int, dur time.Duration, flushEvery int) error {
	recv, err := sflow.NewReceiver(listen)
	if err != nil {
		return err
	}
	defer recv.Close()

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	sw, err := sflow.NewStreamWriter(f)
	if err != nil {
		return err
	}

	// Stop on signal or timer by closing the socket; Run then returns.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	if dur > 0 {
		go func() {
			select {
			case <-time.After(dur):
				recv.Close()
			case <-sigCh:
				recv.Close()
			}
		}()
	} else {
		go func() {
			<-sigCh
			recv.Close()
		}()
	}

	fmt.Printf("listening on %s, writing %s\n", recv.Addr(), out)
	written := 0
	err = recv.Run(func(d *sflow.Datagram) error {
		if err := sw.WriteDatagram(d); err != nil {
			return err
		}
		written++
		// Periodic flushes bound how much a crash or kill -9 can lose on
		// a long-running collection.
		if flushEvery > 0 && written%flushEvery == 0 {
			if err := sw.Flush(); err != nil {
				return err
			}
		}
		if count > 0 && written >= count {
			return errDone
		}
		return nil
	})
	if err != nil && err != errDone {
		return err
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	received, malformed := recv.Stats()
	fmt.Printf("wrote %d datagrams (%d received, %d malformed)\n", written, received, malformed)
	return f.Sync()
}

// errDone signals the requested datagram count was reached.
var errDone = fmt.Errorf("done")
