// Package ixplens is a from-scratch Go reproduction of "On the Benefits
// of Using a Large IXP as an Internet Vantage Point" (Chatzis,
// Smaragdakis, Böttger, Krenc, Feldmann — ACM IMC 2013).
//
// The repository root carries the per-table/per-figure benchmarks; the
// library lives under internal/ (see DESIGN.md for the inventory), the
// executables under cmd/, and runnable scenarios under examples/.
package ixplens
