// Churn reproduces Section 4 ("stable yet changing"): the 17-week
// longitudinal analysis of server IPs at the IXP — the stable,
// recurrent and fresh pools (Fig. 4a), their regional make-up (Fig. 4b),
// AS-level stability (Fig. 4c), traffic concentration in the stable
// pool (Fig. 5), and the §4.2 event studies (HTTPS adoption, a cloud
// region launch, a hurricane-induced outage, reseller growth).
//
//	go run ./examples/churn
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"ixplens/internal/core/churn"
	"ixplens/internal/netmodel"
	"ixplens/internal/pipeline"
	"ixplens/internal/routing"
	"ixplens/internal/traffic"
)

func main() {
	cfg := netmodel.Tiny()
	cfg.NumServers = 2600 // keep sampling density paper-like
	opts := traffic.Options{SamplesPerWeek: 30_000, SamplingRate: 16384, SnapLen: 128}
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tracking 17 weekly snapshots...")
	tracker, _, err := env.TrackWeeks(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	weeks := tracker.Compute()

	// --- Fig. 4(a): weekly bars ---
	fmt.Println("\nFig. 4(a) — server IP churn (stable | recurrent | new):")
	for _, wc := range weeks {
		fmt.Printf("  week %d: %5d IPs  %s\n", wc.Week, wc.Total(), bar(wc))
	}
	last := weeks[len(weeks)-1]
	fmt.Printf("  week 51 shares: stable %.1f%%, recurrent %.1f%%, new %.1f%% (paper: ~30/60/10)\n",
		100*last.Share(churn.PoolStable), 100*last.Share(churn.PoolRecurrent), 100*last.Share(churn.PoolNew))

	// --- Fig. 4(b)/Fig. 5: regions ---
	fmt.Println("\nFig. 4(b)/Fig. 5 — week-51 stable pool by region:")
	for _, region := range []string{"DE", "US", "RU", "CN", "RoW"} {
		rc := last.ByRegion[region]
		if rc == nil {
			continue
		}
		tot := rc.Bytes[0] + rc.Bytes[1] + rc.Bytes[2]
		stableBytes := 0.0
		if tot > 0 {
			stableBytes = float64(rc.Bytes[churn.PoolStable]) / float64(tot)
		}
		fmt.Printf("  %-3s stable IPs %4d, stable share of region traffic %.0f%%\n",
			region, rc.IPs[churn.PoolStable], 100*stableBytes)
	}
	fmt.Printf("  overall: stable pool carries %.1f%% of server traffic (paper: >60%%)\n",
		100*last.ByteShare(churn.PoolStable))

	// --- Fig. 4(c) ---
	fmt.Printf("\nFig. 4(c) — stable ASes: %.1f%% of %d server-hosting ASes (paper: ~70%%)\n",
		100*float64(last.ASes[churn.PoolStable])/float64(last.TotalASes), last.TotalASes)

	// --- §4.2 events ---
	w := env.World
	fmt.Println("\n§4.2 — events visible at the vantage point:")
	fmt.Printf("  HTTPS IP share: %.1f%% -> %.1f%%\n",
		100*weeks[0].HTTPSShareIPs(), 100*last.HTTPSShareIPs())

	ie := tracker.CountInRanges(cloudRanges(w, w.Special.ElastiCloud, "IE"))
	fmt.Printf("  EC2-Ireland analog server IPs per week: %v\n", ie)

	us := tracker.CountInRanges(cloudRanges(w, w.Special.NimbusCloud, "US"))
	idx := 44 - cfg.FirstWeek
	fmt.Printf("  hurricane week: US cloud servers weeks 43/44/45 = %d / %d / %d\n",
		us[idx-1], us[idx], us[idx+1])

	rs := tracker.CountByMember(w.Special.ResellerAS)
	fmt.Printf("  reseller-carried server IPs: %d -> %d\n", rs[0], rs[len(rs)-1])
}

// bar renders a proportional text bar of the week's three pools.
func bar(wc churn.WeekChurn) string {
	const width = 40
	tot := wc.Total()
	if tot == 0 {
		return ""
	}
	s := wc.IPs[churn.PoolStable] * width / tot
	r := wc.IPs[churn.PoolRecurrent] * width / tot
	n := width - s - r
	return strings.Repeat("#", s) + strings.Repeat("=", r) + strings.Repeat(".", n)
}

func cloudRanges(w *netmodel.World, org int32, country string) []routing.Prefix {
	var out []routing.Prefix
	home := w.Orgs[org].HomeAS
	if home < 0 {
		return out
	}
	for _, pi := range w.ASes[home].Prefixes {
		if w.Prefixes[pi].Country == country {
			out = append(out, w.Prefixes[pi].Prefix)
		}
	}
	return out
}
