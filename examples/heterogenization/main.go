// Heterogenization reproduces Section 5 ("beyond the AS-level view"):
// it clusters the identified server IPs by organization, shows how orgs
// spread over many ASes (Fig. 6b) and ASes host many orgs (Fig. 6c),
// and attributes a CDN's traffic to IXP peering links, exposing the
// share that bypasses the direct link (Fig. 7).
//
//	go run ./examples/heterogenization
package main

import (
	"context"
	"fmt"
	"log"

	"ixplens/internal/core/cluster"
	"ixplens/internal/core/hetero"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/traffic"
)

func main() {
	env, err := pipeline.NewEnv(netmodel.Tiny(), traffic.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	week, _, err := env.AnalyzeWeek(context.Background(), 45, nil)
	if err != nil {
		log.Fatal(err)
	}
	w := env.World

	// --- Fig. 6(b): organizations spread over ASes ---
	orgPoints := hetero.OrgSpread(week.Clusters, 10)
	fmt.Printf("Fig. 6(b) — %d orgs with >10 server IPs; widest spreads:\n", len(orgPoints))
	shown := 0
	for _, p := range orgPoints {
		if p.ASes > 1 && shown < 5 {
			fmt.Printf("  %-24s %5d server IPs in %3d ASes\n", p.Authority, p.Servers, p.ASes)
			shown++
		}
	}

	// --- Fig. 6(c): ASes hosting many organizations ---
	asPoints := hetero.ASHosting(week.Clusters, 10)
	fmt.Printf("\nFig. 6(c) — ASes hosting multiple orgs (>=2: %d, >=5: %d):\n",
		hetero.CountASesHostingAtLeast(asPoints, 2),
		hetero.CountASesHostingAtLeast(asPoints, 5))
	for i, p := range asPoints {
		if i >= 5 {
			break
		}
		fmt.Printf("  AS%d hosts %d orgs (%d server IPs)\n", p.ASN, p.Orgs, p.Servers)
	}

	// --- Fig. 7(b): link attribution for the Akamai analog ---
	acme := w.Special.AcmeCDN
	c := week.Clusters.Clusters[w.Orgs[acme].Domain]
	if c == nil {
		log.Fatal("no acme cluster recovered")
	}
	set := make(map[packet.IPv4Addr]bool, len(c.IPs))
	for _, ip := range c.IPs {
		set[ip] = true
	}
	// The attribution replays the fused pass's persisted flow product —
	// the capture is never read a second time.
	ls := week.Links.LinkStats(w.Orgs[acme].HomeAS, env.EntityTable(),
		func(ip packet.IPv4Addr) bool { return set[ip] })
	fmt.Printf("\nFig. 7(b) — acme-cdn link attribution:\n")
	fmt.Printf("  %.1f%% of its traffic does NOT use the direct peering link (paper: 11.1%%)\n",
		100*ls.OffLinkShare())
	fmt.Printf("  %d of %d observed acme servers are seen only behind other members\n",
		ls.ServersOnlyOffLink(), ls.ServersOnlyOffLink()+ls.NumDirectServers())
	points := ls.Points()
	lo, hi := 0, 0
	for _, p := range points {
		if p.DirectShare < 0.05 {
			lo++
		}
		if p.DirectShare > 0.95 {
			hi++
		}
	}
	fmt.Printf("  of %d member ASes exchanging acme traffic: %d get it all indirectly, %d (almost) all directly\n",
		len(points), lo, hi)

	// Validation against ground truth: cluster purity.
	v := cluster.Validate(week.Clusters, func(ip packet.IPv4Addr) (int32, bool) {
		idx, ok := w.ServerByIP(ip)
		if !ok {
			return 0, false
		}
		return w.Servers[idx].Org, true
	})
	fmt.Printf("\nclustering validation: %.2f%% false positives over %d IPs (paper: <3%%)\n",
		100*v.FalsePositiveRate, v.EvaluatedIPs)
}
