// Vantagepoint reproduces Section 3 ("local yet global"): it measures
// how much of the synthetic Internet the IXP "sees" in one week — IPs,
// prefixes, ASes and countries for both peering and server traffic
// (Table 1), the top contributors (Table 2), the A(L)/A(M)/A(G)
// breakdown (Table 3), and the blind spots bounded by IXP-external
// measurements (§3.3).
//
//	go run ./examples/vantagepoint
package main

import (
	"context"
	"fmt"
	"log"

	"ixplens/internal/core/blindspot"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/visibility"
	"ixplens/internal/core/webserver"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/traffic"
)

func main() {
	cfg := netmodel.Tiny()
	env, err := pipeline.NewEnv(cfg, traffic.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// One streaming pass feeds both the per-IP visibility aggregator and
	// the server identifier; no datagram buffer is ever materialized. The
	// aggregator shares the environment's entity table, so every IP is
	// resolved through RIB and geo exactly once across all stages.
	agg := visibility.NewAggregatorWith(env.EntityTable())
	ident := webserver.NewIdentifier()
	if _, _, _, err := env.StreamWeek(context.Background(), 45, func(rec *dissect.Record) {
		agg.Observe(rec)
		ident.Observe(rec)
	}); err != nil {
		log.Fatal(err)
	}
	res := ident.Identify(45, env.Crawler)
	isServer := func(ip packet.IPv4Addr) bool { _, ok := res.Servers[ip]; return ok }

	// --- Table 1 ---
	all := agg.Summarize(nil)
	srv := agg.Summarize(isServer)
	w := env.World
	fmt.Println("Table 1 — what the IXP sees in one week:")
	fmt.Printf("  peering: %d IPs, %d/%d ASes, %d/%d prefixes, %d countries\n",
		all.IPs, all.ASes, len(w.ASes), all.Prefixes, len(w.Prefixes), all.Countries)
	fmt.Printf("  servers: %d IPs, %d ASes, %d prefixes, %d countries\n",
		srv.IPs, srv.ASes, srv.Prefixes, srv.Countries)

	// --- Table 2 ---
	byIPs, byBytes := agg.TopCountries(5, nil)
	fmt.Println("\nTable 2 — top countries:")
	fmt.Printf("  by IPs:     %v\n", keys(byIPs))
	fmt.Printf("  by traffic: %v\n", keys(byBytes))

	// --- Table 3 ---
	var members []uint32
	for i := range w.ASes {
		if w.ASes[i].IsMemberInWeek(45) {
			members = append(members, w.ASes[i].ASN)
		}
	}
	classes := w.ASGraph().Classify(members)
	bd := agg.LocalGlobal(classes, nil)
	fmt.Println("\nTable 3 — local vs global (A(L) / A(M) / A(G)):")
	fmt.Printf("  IPs:     %.1f%% / %.1f%% / %.1f%%\n", 100*bd.IPs[0], 100*bd.IPs[1], 100*bd.IPs[2])
	fmt.Printf("  traffic: %.1f%% / %.1f%% / %.1f%%\n", 100*bd.Traffic[0], 100*bd.Traffic[1], 100*bd.Traffic[2])

	// --- §3.3 blind spots ---
	list := env.AlexaList(45)
	observed := blindspot.ObservedDomains(res)
	n := len(list.Domains)
	fmt.Println("\n§3.3 — blind spots:")
	fmt.Printf("  site recovery: top-1%% %.0f%%, full list %.0f%%\n",
		100*list.Recovery(observed, n/100), 100*list.Recovery(observed, n))
	ixpSet := map[packet.IPv4Addr]bool{}
	for ip := range res.Servers {
		ixpSet[ip] = true
	}
	var uncovered []string
	for _, d := range list.Domains {
		if !observed[d] {
			uncovered = append(uncovered, d)
		}
	}
	disc := blindspot.Discover(env.DNS, uncovered, 20, ixpSet, cfg.Seed)
	fmt.Printf("  active discovery: %d server IPs from %d domains; %d already at IXP\n",
		len(disc.Discovered), disc.QueriedDomains, disc.AlreadyAtIXP)
	cats := blindspot.ClassifyUnseen(w, disc.Discovered, ixpSet)
	fmt.Printf("  unseen classified: %v\n", cats)
}

func keys(s []visibility.Share) []string {
	out := make([]string, 0, len(s))
	for _, sh := range s {
		out = append(out, sh.Key)
	}
	return out
}
