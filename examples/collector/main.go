// Collector demonstrates the operational path the paper's measurement
// setup used: IXP edge switches export sFlow datagrams over UDP, a
// collector receives and persists them (here: anonymized with a
// prefix-preserving function, like the shared dataset), and the
// analysis runs over what the collector wrote.
//
//	go run ./examples/collector
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ixplens/internal/anonymize"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/webserver"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/pipeline"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
)

func main() {
	cfg := netmodel.Tiny()
	opts := traffic.Options{SamplesPerWeek: 10_000, SamplingRate: 16384, SnapLen: 128}
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		log.Fatal(err)
	}

	// --- Collector side: bind a UDP socket, write an anonymized capture.
	recv, err := sflow.NewReceiver("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "ixplens-collector")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "week-45.sflow")
	out, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	// The v2 block container checksums every block and indexes the file
	// for parallel decoding at analysis time.
	sw, err := sflow.NewBlockWriter(out, false)
	if err != nil {
		log.Fatal(err)
	}
	anon := anonymize.New(0xc011ec7)
	sink := anon.Datagrams(sw.WriteDatagram)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := recv.Run(sink); err != nil {
			log.Println("collector:", err)
		}
	}()
	fmt.Println("collector listening on", recv.Addr())

	// --- Agent side: generate week 45 and export it over the socket.
	exp, err := sflow.NewExporter(recv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	col := ixp.NewCollector(env.Fabric, opts.SamplingRate, exp.Send)
	if _, err := env.Gen.GenerateWeek(45, col); err != nil {
		log.Fatal(err)
	}
	exp.Close()

	// Drain and close. Loopback delivery is near-instant, but UDP may
	// drop under pressure, so bound the wait.
	deadline := time.Now().Add(3 * time.Second)
	for {
		received, _ := recv.Stats()
		if int(received) >= exp.Count() || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	recv.Close()
	wg.Wait()
	if err := sw.Close(); err != nil {
		log.Fatal(err)
	}
	out.Close()
	received, malformed := recv.Stats()
	fmt.Printf("exported %d datagrams, collected %d (%d malformed)\n",
		exp.Count(), received, malformed)

	// --- Analysis side: mine the anonymized capture.
	in, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	// OpenReader sniffs the container magic, so the same analysis code
	// reads v1 stream and v2 block captures.
	sr, err := sflow.OpenReader(in)
	if err != nil {
		log.Fatal(err)
	}
	cls := dissect.NewClassifier(env.Fabric)
	ident := webserver.NewIdentifier()
	counts, err := dissect.Process(sr, cls, ident.Observe)
	if err != nil {
		log.Fatal(err)
	}
	res := ident.Identify(45, env.Crawler)
	fmt.Printf("analysis over anonymized capture: %d samples, %.2f%% peering, %d server IPs identified\n",
		counts.Total, 100*counts.PeeringShare(), len(res.Servers))
	fmt.Println("(addresses are anonymized; prefix-level aggregation still works, RIB lookups intentionally do not)")
}
