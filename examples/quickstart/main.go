// Quickstart: generate a small synthetic Internet plus IXP, run one
// week of sampled sFlow traffic through the measurement pipeline, and
// print the headline numbers of the paper's week-45 snapshot — the
// filtering cascade (Fig. 1), the identified Web server set (§2.2.2)
// and the organization clustering (§5.1).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ixplens/internal/core/cluster"
	"ixplens/internal/netmodel"
	"ixplens/internal/pipeline"
	"ixplens/internal/traffic"
)

func main() {
	// A small world: ~400 ASes, ~4800 server IPs, 60 IXP members.
	cfg := netmodel.Tiny()
	opts := traffic.DefaultOptions()

	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("world:", env)

	// Stream and analyse one weekly snapshot (week 45, as in the paper):
	// samples are classified as they are generated, with bounded memory.
	week, _, err := env.AnalyzeWeek(context.Background(), 45, nil)
	if err != nil {
		log.Fatal(err)
	}

	c := week.Counts
	fmt.Printf("\nFig. 1 cascade over %d sampled frames:\n", c.Total)
	fmt.Printf("  non-IPv4 %.2f%% | local %.2f%% | non-TCP/UDP %.2f%% | peering %.2f%%\n",
		pct(c.NonIPv4, c.Total), pct(c.Local, c.Total), pct(c.NonTCPUDP, c.Total),
		100*c.PeeringShare())
	fmt.Printf("  peering bytes: %.1f%% TCP / %.1f%% UDP\n", 100*c.TCPShare(), 100*(1-c.TCPShare()))

	res := week.Servers
	https := 0
	for _, s := range res.Servers {
		if s.HTTPS {
			https++
		}
	}
	fmt.Printf("\nWeb servers identified: %d (of %d endpoint IPs observed)\n",
		len(res.Servers), res.TotalIPs)
	fmt.Printf("  HTTPS crawl funnel: %d candidates -> %d responded -> %d valid\n",
		res.Candidates443, res.Responded443, res.Valid443)
	fmt.Printf("  multi-purpose: %d, dual-role: %d\n", res.MultiPurpose(), res.DualRole())

	cl := week.Clusters
	fmt.Printf("\nOrganization clustering: %d orgs\n", len(cl.Clusters))
	fmt.Printf("  step shares: %.1f%% / %.1f%% / %.1f%% (paper: 78.7 / 17.4 / 3.9)\n",
		100*cl.ClusteredShare(cluster.Step1),
		100*cl.ClusteredShare(cluster.Step2),
		100*cl.ClusteredShare(cluster.Step3))

	// The Akamai-analog cluster, recovered purely from measurements.
	w := env.World
	if acme := cl.Clusters[w.Orgs[w.Special.AcmeCDN].Domain]; acme != nil {
		fmt.Printf("  acme-cdn cluster: %d server IPs across %d ASes\n",
			len(acme.IPs), len(acme.ASNs))
	}
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
